/// \file parallel.hpp
/// \brief Thread-parallel experiment drivers.
///
/// Monte-Carlo verification is embarrassingly parallel, but two things
/// must be engineered for: (1) stateful routers (multipath, adaptive)
/// cannot be shared across threads, so workers build their own via a
/// factory; (2) results must not depend on the pool's thread count, so
/// trials are split into a *fixed* number of chunks with seeds derived
/// from the master seed, and partials are merged in chunk order.
#pragma once

#include <cstdint>
#include <functional>

#include "nbclos/analysis/blocking.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos {

/// Build a worker-private PatternRouter from a chunk seed.
using PatternRouterFactory =
    std::function<PatternRouter(std::uint64_t chunk_seed)>;

/// Parallel estimate_blocking: `trials` random permutations split over
/// `chunks` deterministic chunks evaluated on `pool`.  The estimate is
/// identical for any pool size (chunk seeds and merge order are fixed).
[[nodiscard]] BlockingEstimate estimate_blocking_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks = 16);

/// Parallel randomized nonblocking verification: returns nonblocking ==
/// true iff no chunk found a counterexample; otherwise one
/// counterexample (from the lowest-index failing chunk, so the result is
/// deterministic).
[[nodiscard]] VerifyResult verify_random_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks = 16);

/// Batched overloads for single-path deterministic routings: one
/// RouteCache is materialized per call and shared read-only by every
/// worker; each chunk scores its trials through a private BatchLoadKernel
/// (analysis/batch.hpp), up to BatchLoadKernel::kMaxBatch permutations
/// per arena pass.  Same chunk seeds, same per-trial statistics, same
/// merge order — the results are bit-identical to the factory overloads
/// above wrapping `routing`, at a fraction of the per-trial cost.
[[nodiscard]] BlockingEstimate estimate_blocking_parallel(
    const FoldedClos& ftree, const SinglePathRouting& routing,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks = 16);
[[nodiscard]] VerifyResult verify_random_parallel(
    const FoldedClos& ftree, const SinglePathRouting& routing,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks = 16);

/// Parallel exhaustive verification, sharded over contiguous lexicographic
/// rank ranges of the full permutation space (factorial-number-system
/// unrank seeds each shard, std::next_permutation walks it).  An atomic
/// lowest-counterexample-rank flag lets shards abandon ranks that can no
/// longer matter, and the merged result — the lowest-rank counterexample,
/// with permutations_checked = its rank + 1 (or leafs! when nonblocking)
/// — is bit-identical to serial verify_exhaustive at any thread count.
/// `shards` == 0 picks 16 per pool thread.  \pre leaf_count <= 11.
[[nodiscard]] VerifyResult verify_exhaustive_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    ThreadPool& pool, std::uint32_t shards = 0);

/// The per-restart seed used by the parallel adversarial drivers;
/// exposed so tools can reproduce an individual restart.
[[nodiscard]] std::uint64_t adversarial_restart_seed(std::uint64_t seed,
                                                     std::uint32_t restart);

/// Parallel delta-evaluated adversarial search: every restart runs with
/// its own SplitMix64-derived seed and private SwapDeltaState, so the
/// merged result (lowest failing restart index wins; permutations_checked
/// sums restarts up to and including it) is thread-count independent.
/// `routing` is shared read-only across workers and must be thread-safe
/// under concurrent route() calls — true of all deterministic routings
/// in this library.
[[nodiscard]] VerifyResult verify_adversarial_parallel(
    const FoldedClos& ftree, const SinglePathRouting& routing,
    const AdversarialOptions& options, std::uint64_t seed, ThreadPool& pool);

/// Parallel worst-case maximization over per-restart seeds; the merged
/// result takes the max-collision restart (lowest index on ties).
[[nodiscard]] WorstCaseResult worst_case_search_parallel(
    const FoldedClos& ftree, const SinglePathRouting& routing,
    const AdversarialOptions& options, std::uint64_t seed, ThreadPool& pool);

}  // namespace nbclos
