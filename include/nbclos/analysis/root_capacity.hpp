/// \file root_capacity.hpp
/// \brief Lemma 2: how many SD pairs can one top-level switch carry?
///
/// In the single-top-switch subgraph ftree(n+1, r), a set of SD pairs is
/// *feasible* when every uplink and every downlink carries traffic either
/// from one source or to one destination.  Lemma 2 upper-bounds the
/// largest feasible set by r(r-1) when r >= 2n+1 and by 2nr when
/// r <= 2n+1.  We provide:
///   * the analytic bound;
///   * an exact maximizer (`root_capacity_exact`) based on a per-link
///     mode decomposition — each uplink is either in *source mode* (all
///     its pairs share one source) or *destination mode* (all its pairs
///     target one destination node), and symmetrically for downlinks;
///     after normalizing designated nodes to local index 0 (a per-switch
///     relabeling argument, see the implementation comment) the optimum
///     decomposes per downlink given the uplink modes; branch-and-bound
///     over uplink modes with an admissible per-switch upper bound and
///     incremental counters makes the search exact up to r = 10;
///   * a subset brute force (`root_capacity_bruteforce`) that checks the
///     mode model on tiny instances by searching raw SD-pair subsets,
///     itself branch-and-bound via a feasibility-aware compatible-pair
///     bound and incremental link states;
///   * the always-feasible witness of size r(r-1).
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/topology/ids.hpp"

namespace nbclos {

/// Lemma 2's analytic bound: r(r-1) if r >= 2n+1, else 2nr.
[[nodiscard]] std::uint64_t root_capacity_bound(std::uint32_t n,
                                                std::uint32_t r);

/// Exact maximum feasible SD-pair count through one top switch, by
/// branch-and-bound over uplink modes.  \pre r <= 10.
[[nodiscard]] std::uint64_t root_capacity_exact(std::uint32_t n,
                                                std::uint32_t r);

/// Exact maximum by raw subset search over all r(r-1)n^2 SD pairs with
/// incremental feasibility pruning and a compatible-remaining bound.
/// \pre r(r-1)n^2 <= 60.  Used to validate the mode model.
[[nodiscard]] std::uint64_t root_capacity_bruteforce(std::uint32_t n,
                                                     std::uint32_t r);

/// The witness achieving r(r-1): one designated source and one designated
/// destination per switch, all cross pairs between them.  Always feasible.
[[nodiscard]] std::vector<SDPair> root_capacity_witness(std::uint32_t n,
                                                        std::uint32_t r);

/// Feasibility check used by tests and the brute force: every uplink and
/// downlink of the one-top-switch subgraph carries pairs sharing a source
/// or sharing a destination.
[[nodiscard]] bool root_set_feasible(std::uint32_t n, std::uint32_t r,
                                     const std::vector<SDPair>& pairs);

}  // namespace nbclos
