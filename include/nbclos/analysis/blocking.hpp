/// \file blocking.hpp
/// \brief Blocking-probability estimation for routings that are *not*
///        nonblocking — quantifying how far a scheme is from the paper's
///        ideal, in the spirit of the prior work the paper cites
///        ([6], [9], [15]).
#pragma once

#include <cstdint>

#include "nbclos/analysis/verifier.hpp"
#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {

struct BlockingEstimate {
  std::uint64_t trials = 0;
  std::uint64_t blocked = 0;           ///< permutations with any contention
  double blocking_probability = 0.0;   ///< blocked / trials
  double mean_colliding_pairs = 0.0;   ///< mean collisions per permutation
  double mean_max_link_load = 0.0;     ///< mean of max paths per link
  double ci95_half_width = 0.0;        ///< for blocking_probability
};

/// Sample `trials` random full permutations and measure contention.
[[nodiscard]] BlockingEstimate estimate_blocking(const FoldedClos& ftree,
                                                 const PatternRouter& router,
                                                 std::uint64_t trials,
                                                 Xoshiro256& rng);

}  // namespace nbclos
