/// \file batch.hpp
/// \brief Batched link-load evaluation over one contiguous arena.
///
/// The sampling verifiers and sweep drivers score many independent
/// permutations against the same immutable RouteCache.  Scoring them one
/// LinkLoadMap at a time pays an allocation (or an O(link_count) clear)
/// per pattern and walks a cold counter array each time.  BatchLoadKernel
/// instead keeps ONE arena of kMaxBatch lane-major load segments —
/// allocated once, reused for every batch — and clears only the links a
/// lane actually touched (a permutation loads <= 4 * leafs links, far
/// fewer than the arena row).  Per-lane collision statistics are
/// maintained incrementally exactly like LinkLoadMap, so a lane's stats
/// are bit-identical to a from-scratch evaluation of its pattern.
///
/// The kernel is single-threaded by design: parallel drivers give each
/// worker chunk its own kernel and share only the read-only RouteCache.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "nbclos/routing/route_cache.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::analysis {

class BatchLoadKernel {
 public:
  /// Lanes scored per pass.  16 keeps the whole arena of a radix-48
  /// fabric comfortably inside L2 while amortizing loop overhead.
  static constexpr std::uint32_t kMaxBatch = 16;

  /// Per-lane pattern statistics (the LinkLoadMap summary triple).
  struct LaneStats {
    std::uint64_t colliding_pairs = 0;
    std::uint32_t contended_links = 0;
    std::uint32_t max_load = 0;
  };

  /// `cache` must outlive the kernel; the arena is sized to its fabric.
  explicit BatchLoadKernel(const routing::RouteCache& cache)
      : cache_(&cache),
        links_(cache.link_count()),
        leafs_(cache.leaf_count()),
        load_(std::size_t{cache.link_count()} * kMaxBatch, 0) {
    touched_.reserve(std::size_t{4} * leafs_ * kMaxBatch);
  }

  [[nodiscard]] std::uint32_t leaf_count() const noexcept { return leafs_; }
  /// Arena + touched-list footprint (reported by bench_scale).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return load_.capacity() * sizeof(std::uint32_t) +
           touched_.capacity() * sizeof(std::uint32_t);
  }

  /// Score `lanes` target vectors in one pass.  `targets` is lane-major:
  /// entry [lane * leaf_count() + s] is the destination of leaf s in
  /// that lane's pattern; self-pairs carry no traffic.  Unroutable pairs
  /// (degraded caches) are skipped — callers that must detect them check
  /// the cache's flags themselves.  Returns one LaneStats per lane, in
  /// lane order; the arena is cleared before returning, so back-to-back
  /// calls never see stale loads.  \pre 1 <= lanes <= kMaxBatch.
  [[nodiscard]] std::span<const LaneStats> score_targets(
      std::span<const std::uint32_t> targets, std::uint32_t lanes);

 private:
  const routing::RouteCache* cache_;
  std::uint32_t links_;
  std::uint32_t leafs_;
  /// kMaxBatch lane-major segments: lane `b` owns
  /// load_[b * links_, (b + 1) * links_).
  std::vector<std::uint32_t> load_;
  /// Arena slots driven nonzero this pass (pushed on the 0 -> 1
  /// transition, so each slot appears once) — clearing cost tracks the
  /// traffic actually routed, not the arena size.
  std::vector<std::uint32_t> touched_;
  std::array<LaneStats, kMaxBatch> stats_{};
};

}  // namespace nbclos::analysis
