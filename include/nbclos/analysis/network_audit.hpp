/// \file network_audit.hpp
/// \brief Topology-agnostic generalization of Lemma 1 and the contention
///        checker, over arbitrary Network graphs.
///
/// Lemma 1's proof never uses fat-tree structure: for *any* topology with
/// single-path deterministic routing, the network is nonblocking iff
/// every channel carries traffic from one source or to one destination
/// (both directions of the argument only need that any two SD pairs with
/// distinct sources and distinct destinations form a permutation).  This
/// header provides that audit for Network graphs, plus per-channel load
/// counting — the tools the multi-level recursive fabric (§IV) is
/// verified with.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nbclos/topology/ids.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos {

/// A route through a Network: the channels a packet traverses, in order.
using ChannelPath = std::vector<std::uint32_t>;

/// Routing function over terminals of a Network (terminal *indices*, i.e.
/// positions in net.terminals(), so callers can keep leaf numbering).
using NetworkRouteFn = std::function<ChannelPath(SDPair)>;

/// Per-channel load counting for a set of routed paths.
class ChannelLoadMap {
 public:
  explicit ChannelLoadMap(const Network& net)
      : load_(net.channel_count(), 0) {}

  void add_path(const ChannelPath& path) {
    for (const auto c : path) ++load_.at(c);
  }

  [[nodiscard]] std::uint32_t load(std::uint32_t channel) const {
    return load_.at(channel);
  }
  [[nodiscard]] std::uint32_t contended_channels() const;
  [[nodiscard]] std::uint64_t colliding_pairs() const;
  [[nodiscard]] bool contention_free() const {
    return contended_channels() == 0;
  }

 private:
  std::vector<std::uint32_t> load_;
};

/// True when two or more of the given paths share a channel.
[[nodiscard]] bool network_has_contention(const Network& net,
                                          const std::vector<ChannelPath>& paths);

/// Generalized Lemma 1 audit: route every ordered pair of distinct
/// terminals and check that each channel carries traffic from one source
/// or to one destination.  Returns the violating channel ids (empty ==
/// the routing is nonblocking on this network).
[[nodiscard]] std::vector<std::uint32_t> network_lemma1_audit(
    const Network& net, const NetworkRouteFn& route);

/// Validate that a path is well-formed: consecutive channels chain
/// (dst of one == src of next), it starts at the source terminal and
/// ends at the destination terminal.  Throws on violation.
void validate_channel_path(const Network& net, std::uint32_t src_terminal,
                           std::uint32_t dst_terminal,
                           const ChannelPath& path);

}  // namespace nbclos
