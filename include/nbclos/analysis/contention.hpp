/// \file contention.hpp
/// \brief Link contention measurement and the Lemma 1 link audit.
///
/// Contention (paper §III): a communication pattern causes contention
/// under a routing when two of its SD pairs are routed through one
/// directed link.  LinkLoadMap counts per-link path loads; the audit
/// utilities check Lemma 1's iff-condition — "every link carries traffic
/// either from one source or to one destination" — over *all* SD pairs a
/// routing can ever produce.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "nbclos/routing/single_path.hpp"
#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

/// Per-link path counters for one routed pattern.
///
/// The collision statistics are maintained *incrementally*: every
/// add/remove updates a running sum-of-C(load, 2) and contended-link
/// count, so `colliding_pairs()` and `contended_links()` are O(1).  That
/// makes the map usable as persistent hill-climb state — a two-target
/// swap removes and re-adds at most four paths instead of rebuilding the
/// whole map (see analysis/delta.hpp).
class LinkLoadMap {
 public:
  explicit LinkLoadMap(const FoldedClos& ftree)
      : ftree_(&ftree), load_(ftree.link_count(), 0) {}

  void add_path(const FtreePath& path);
  void add_paths(const std::vector<FtreePath>& paths);
  /// Undo a previous add_path of the same path.  \pre every link of the
  /// path currently has load >= 1.
  void remove_path(const FtreePath& path);
  /// Zero every counter (O(link_count)).
  void clear();

  /// Load / unload a precomputed flat link-id run (the RouteCache
  /// representation of a path — see routing/route_cache.hpp).  These are
  /// the delta evaluator's hot path: a plain loop over a small span of
  /// contiguous uint32 ids, no LinkId wrapping and no per-link branch
  /// beyond the counter updates themselves.
  void add_run(std::span<const std::uint32_t> run) {
    for (const auto link : run) bump_index(link);
  }
  /// \pre every link of the run currently has load >= 1.
  void remove_run(std::span<const std::uint32_t> run) {
    for (const auto link : run) drop_index(link);
  }

  [[nodiscard]] std::uint32_t load(LinkId link) const {
    NBCLOS_REQUIRE(link.value < load_.size(), "link id out of range");
    return load_[link.value];
  }
  /// Number of links carrying two or more paths.
  [[nodiscard]] std::uint32_t contended_links() const noexcept {
    return contended_links_;
  }
  /// Number of colliding path pairs, summed over links: sum C(load, 2).
  [[nodiscard]] std::uint64_t colliding_pairs() const noexcept {
    return colliding_pairs_;
  }
  [[nodiscard]] std::uint32_t max_load() const;
  [[nodiscard]] bool contention_free() const { return contended_links() == 0; }

 private:
  void bump_index(std::uint32_t link) {
    NBCLOS_DEBUG_CHECK(link < load_.size(), "link id out of range");
    auto& l = load_[link];
    colliding_pairs_ += l;  // new path collides with each resident one
    if (++l == 2) ++contended_links_;
  }
  void drop_index(std::uint32_t link) {
    NBCLOS_DEBUG_CHECK(link < load_.size(), "link id out of range");
    auto& l = load_[link];
    NBCLOS_DEBUG_CHECK(l > 0, "removing path from empty link");
    if (l-- == 2) --contended_links_;
    colliding_pairs_ -= l;
  }
  void bump(LinkId link) { bump_index(link.value); }
  void drop(LinkId link) { drop_index(link.value); }

  const FoldedClos* ftree_;
  std::vector<std::uint32_t> load_;
  std::uint64_t colliding_pairs_ = 0;
  std::uint32_t contended_links_ = 0;
};

/// Convenience: does this pattern cause contention under these paths?
[[nodiscard]] bool has_contention(const FoldedClos& ftree,
                                  const std::vector<FtreePath>& paths);

/// One Lemma 1 violation: a link carrying traffic from >= 2 sources AND
/// to >= 2 destinations.  The counts are the *exact* numbers of distinct
/// sources / destinations whose traffic crosses the link.
struct LinkAuditViolation {
  LinkId link;
  std::uint32_t distinct_sources = 0;
  std::uint32_t distinct_destinations = 0;
};

/// Audit a single-path deterministic routing against Lemma 1 by routing
/// every one of the r(r-1)n^2 cross SD pairs (plus same-switch pairs) and
/// checking every link.  Empty result  <=>  the routing is nonblocking
/// (Lemma 1 is an iff).
[[nodiscard]] std::vector<LinkAuditViolation> lemma1_audit(
    const SinglePathRouting& routing);

/// Lemma 1 verdict for a single-path deterministic routing.
[[nodiscard]] inline bool is_nonblocking_single_path(
    const SinglePathRouting& routing) {
  return lemma1_audit(routing).empty();
}

/// Audit an arbitrary per-SD link footprint (used for oblivious
/// multipath, where Lemma 1 must hold over the union of candidate paths).
/// `footprint(sd)` returns the links packets of `sd` may traverse.
[[nodiscard]] std::vector<LinkAuditViolation> lemma1_audit_footprints(
    const FoldedClos& ftree,
    const std::function<std::vector<LinkId>(SDPair)>& footprint);

}  // namespace nbclos
