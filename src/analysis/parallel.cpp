#include "nbclos/analysis/parallel.hpp"

#include <cmath>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

namespace {

/// Per-chunk trial counts: distribute `trials` over `chunks` as evenly
/// as possible (first `trials % chunks` chunks get one extra).
std::vector<std::uint64_t> chunk_sizes(std::uint64_t trials,
                                       std::uint32_t chunks) {
  NBCLOS_REQUIRE(chunks >= 1, "need at least one chunk");
  std::vector<std::uint64_t> sizes(chunks, trials / chunks);
  for (std::uint32_t c = 0; c < trials % chunks; ++c) ++sizes[c];
  return sizes;
}

std::uint64_t chunk_seed(std::uint64_t master, std::uint32_t chunk) {
  SplitMix64 sm(master ^ (0xA5A5A5A5ULL + chunk));
  return sm.next();
}

}  // namespace

BlockingEstimate estimate_blocking_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks) {
  NBCLOS_REQUIRE(trials > 0, "need at least one trial");
  const auto sizes = chunk_sizes(trials, chunks);

  struct Partial {
    std::uint64_t blocked = 0;
    double sum_collisions = 0.0;
    double sum_max_load = 0.0;
  };
  std::vector<Partial> partials(chunks);

  for (std::uint32_t c = 0; c < chunks; ++c) {
    if (sizes[c] == 0) continue;
    pool.submit([&, c] {
      Xoshiro256 rng(chunk_seed(seed, c));
      const auto router = make_router(chunk_seed(seed, c) ^ 0xC0FFEE);
      Partial partial;
      for (std::uint64_t t = 0; t < sizes[c]; ++t) {
        const auto pattern = random_permutation(ftree.leaf_count(), rng);
        LinkLoadMap map(ftree);
        map.add_paths(router(pattern));
        const auto collisions = map.colliding_pairs();
        if (collisions > 0) ++partial.blocked;
        partial.sum_collisions += static_cast<double>(collisions);
        partial.sum_max_load += static_cast<double>(map.max_load());
      }
      partials[c] = partial;
    });
  }
  pool.wait_idle();

  BlockingEstimate est;
  est.trials = trials;
  double sum_collisions = 0.0;
  double sum_max_load = 0.0;
  for (const auto& partial : partials) {  // fixed merge order
    est.blocked += partial.blocked;
    sum_collisions += partial.sum_collisions;
    sum_max_load += partial.sum_max_load;
  }
  const auto count = static_cast<double>(trials);
  est.blocking_probability = static_cast<double>(est.blocked) / count;
  est.mean_colliding_pairs = sum_collisions / count;
  est.mean_max_link_load = sum_max_load / count;
  const double p = est.blocking_probability;
  est.ci95_half_width = 1.96 * std::sqrt(p * (1.0 - p) / count);
  return est;
}

VerifyResult verify_random_parallel(const FoldedClos& ftree,
                                    const PatternRouterFactory& make_router,
                                    std::uint64_t trials, std::uint64_t seed,
                                    ThreadPool& pool, std::uint32_t chunks) {
  const auto sizes = chunk_sizes(trials, chunks);
  std::vector<VerifyResult> partials(chunks);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    if (sizes[c] == 0) {
      partials[c].nonblocking = true;
      continue;
    }
    pool.submit([&, c] {
      Xoshiro256 rng(chunk_seed(seed, c));
      const auto router = make_router(chunk_seed(seed, c) ^ 0xC0FFEE);
      partials[c] = verify_random(ftree, router, sizes[c], rng);
    });
  }
  pool.wait_idle();

  VerifyResult result;
  result.nonblocking = true;
  for (const auto& partial : partials) {  // lowest failing chunk wins
    result.permutations_checked += partial.permutations_checked;
    if (result.nonblocking && !partial.nonblocking) {
      result.nonblocking = false;
      result.counterexample = partial.counterexample;
      result.counterexample_collisions = partial.counterexample_collisions;
    }
  }
  return result;
}

}  // namespace nbclos
