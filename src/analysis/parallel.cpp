#include "nbclos/analysis/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <optional>

#include "nbclos/analysis/batch.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

namespace {

/// Per-chunk trial counts: distribute `trials` over `chunks` as evenly
/// as possible (first `trials % chunks` chunks get one extra).
std::vector<std::uint64_t> chunk_sizes(std::uint64_t trials,
                                       std::uint32_t chunks) {
  NBCLOS_REQUIRE(chunks >= 1, "need at least one chunk");
  std::vector<std::uint64_t> sizes(chunks, trials / chunks);
  for (std::uint32_t c = 0; c < trials % chunks; ++c) ++sizes[c];
  return sizes;
}

std::uint64_t chunk_seed(std::uint64_t master, std::uint32_t chunk) {
  SplitMix64 sm(master ^ (0xA5A5A5A5ULL + chunk));
  return sm.next();
}

/// Monotonic nanoseconds for coarse (per-shard) obs timing.
std::uint64_t obs_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fill up to kMaxBatch lane-major target vectors with random full
/// permutations, consuming `rng` exactly like one random_permutation
/// call per lane (iota + shuffle) — the batched drivers stay on the
/// same rng stream as their one-pattern-at-a-time counterparts.
std::uint32_t fill_random_lanes(std::uint32_t leafs, std::uint64_t remaining,
                                Xoshiro256& rng,
                                std::vector<std::uint32_t>& targets) {
  const auto lanes = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      analysis::BatchLoadKernel::kMaxBatch, remaining));
  targets.resize(std::size_t{lanes} * leafs);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    const auto seg = targets.begin() + std::ptrdiff_t{lane} * leafs;
    std::iota(seg, seg + leafs, 0U);
    shuffle(seg, seg + leafs, rng);
  }
  return lanes;
}

/// The lane's target vector as a Permutation (counterexample reporting).
Permutation lane_pattern(const std::vector<std::uint32_t>& targets,
                         std::uint32_t lane, std::uint32_t leafs) {
  const auto begin = targets.begin() + std::ptrdiff_t{lane} * leafs;
  return permutation_from_targets(
      std::vector<std::uint32_t>(begin, begin + leafs));
}

}  // namespace

BlockingEstimate estimate_blocking_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks) {
  NBCLOS_REQUIRE(trials > 0, "need at least one trial");
  const auto sizes = chunk_sizes(trials, chunks);
  obs::ScopedSpan span("verify.blocking_estimate", "verify");
  span.arg("trials", static_cast<double>(trials));

  struct Partial {
    std::uint64_t blocked = 0;
    double sum_collisions = 0.0;
    double sum_max_load = 0.0;
  };
  std::vector<Partial> partials(chunks);

  for (std::uint32_t c = 0; c < chunks; ++c) {
    if (sizes[c] == 0) continue;
    pool.submit([&, c] {
      Xoshiro256 rng(chunk_seed(seed, c));
      const auto router = make_router(chunk_seed(seed, c) ^ 0xC0FFEE);
      Partial partial;
      LinkLoadMap map(ftree);
      for (std::uint64_t t = 0; t < sizes[c]; ++t) {
        const auto pattern = random_permutation(ftree.leaf_count(), rng);
        map.clear();
        map.add_paths(router(pattern));
        const auto collisions = map.colliding_pairs();
        if (collisions > 0) ++partial.blocked;
        partial.sum_collisions += static_cast<double>(collisions);
        partial.sum_max_load += static_cast<double>(map.max_load());
      }
      partials[c] = partial;
    });
  }
  pool.wait_idle();

  BlockingEstimate est;
  est.trials = trials;
  double sum_collisions = 0.0;
  double sum_max_load = 0.0;
  for (const auto& partial : partials) {  // fixed merge order
    est.blocked += partial.blocked;
    sum_collisions += partial.sum_collisions;
    sum_max_load += partial.sum_max_load;
  }
  const auto count = static_cast<double>(trials);
  est.blocking_probability = static_cast<double>(est.blocked) / count;
  est.mean_colliding_pairs = sum_collisions / count;
  est.mean_max_link_load = sum_max_load / count;
  const double p = est.blocking_probability;
  est.ci95_half_width = 1.96 * std::sqrt(p * (1.0 - p) / count);
  return est;
}

VerifyResult verify_random_parallel(const FoldedClos& ftree,
                                    const PatternRouterFactory& make_router,
                                    std::uint64_t trials, std::uint64_t seed,
                                    ThreadPool& pool, std::uint32_t chunks) {
  const auto sizes = chunk_sizes(trials, chunks);
  obs::ScopedSpan span("verify.random", "verify");
  span.arg("trials", static_cast<double>(trials));
  std::vector<VerifyResult> partials(chunks);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    if (sizes[c] == 0) {
      partials[c].nonblocking = true;
      continue;
    }
    pool.submit([&, c] {
      Xoshiro256 rng(chunk_seed(seed, c));
      const auto router = make_router(chunk_seed(seed, c) ^ 0xC0FFEE);
      partials[c] = verify_random(ftree, router, sizes[c], rng);
    });
  }
  pool.wait_idle();

  VerifyResult result;
  result.nonblocking = true;
  for (const auto& partial : partials) {  // lowest failing chunk wins
    result.permutations_checked += partial.permutations_checked;
    if (result.nonblocking && !partial.nonblocking) {
      result.nonblocking = false;
      result.counterexample = partial.counterexample;
      result.counterexample_collisions = partial.counterexample_collisions;
    }
  }
  obs::metrics().counter("verify.perms_evaluated")
      .add(result.permutations_checked);
  return result;
}

BlockingEstimate estimate_blocking_parallel(const FoldedClos& ftree,
                                            const SinglePathRouting& routing,
                                            std::uint64_t trials,
                                            std::uint64_t seed,
                                            ThreadPool& pool,
                                            std::uint32_t chunks) {
  NBCLOS_REQUIRE(trials > 0, "need at least one trial");
  const auto sizes = chunk_sizes(trials, chunks);
  obs::ScopedSpan span("verify.blocking_estimate", "verify");
  span.arg("trials", static_cast<double>(trials));
  const auto cache = routing::RouteCache::materialize(routing);

  struct Partial {
    std::uint64_t blocked = 0;
    double sum_collisions = 0.0;
    double sum_max_load = 0.0;
  };
  std::vector<Partial> partials(chunks);

  for (std::uint32_t c = 0; c < chunks; ++c) {
    if (sizes[c] == 0) continue;
    pool.submit([&, c] {
      Xoshiro256 rng(chunk_seed(seed, c));
      analysis::BatchLoadKernel kernel(cache);
      std::vector<std::uint32_t> targets;
      Partial partial;
      std::uint64_t done = 0;
      while (done < sizes[c]) {
        const auto lanes =
            fill_random_lanes(ftree.leaf_count(), sizes[c] - done, rng,
                              targets);
        const auto stats = kernel.score_targets(targets, lanes);
        for (const auto& st : stats) {  // lane order == trial order
          if (st.colliding_pairs > 0) ++partial.blocked;
          partial.sum_collisions += static_cast<double>(st.colliding_pairs);
          partial.sum_max_load += static_cast<double>(st.max_load);
        }
        done += lanes;
      }
      partials[c] = partial;
    });
  }
  pool.wait_idle();

  BlockingEstimate est;
  est.trials = trials;
  double sum_collisions = 0.0;
  double sum_max_load = 0.0;
  for (const auto& partial : partials) {  // fixed merge order
    est.blocked += partial.blocked;
    sum_collisions += partial.sum_collisions;
    sum_max_load += partial.sum_max_load;
  }
  const auto count = static_cast<double>(trials);
  est.blocking_probability = static_cast<double>(est.blocked) / count;
  est.mean_colliding_pairs = sum_collisions / count;
  est.mean_max_link_load = sum_max_load / count;
  const double p = est.blocking_probability;
  est.ci95_half_width = 1.96 * std::sqrt(p * (1.0 - p) / count);
  return est;
}

VerifyResult verify_random_parallel(const FoldedClos& ftree,
                                    const SinglePathRouting& routing,
                                    std::uint64_t trials, std::uint64_t seed,
                                    ThreadPool& pool, std::uint32_t chunks) {
  const auto sizes = chunk_sizes(trials, chunks);
  obs::ScopedSpan span("verify.random", "verify");
  span.arg("trials", static_cast<double>(trials));
  const auto cache = routing::RouteCache::materialize(routing);
  std::vector<VerifyResult> partials(chunks);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    partials[c].nonblocking = true;
    if (sizes[c] == 0) continue;
    pool.submit([&, c] {
      Xoshiro256 rng(chunk_seed(seed, c));
      analysis::BatchLoadKernel kernel(cache);
      std::vector<std::uint32_t> targets;
      auto& partial = partials[c];
      std::uint64_t done = 0;
      while (done < sizes[c] && partial.nonblocking) {
        const auto lanes =
            fill_random_lanes(ftree.leaf_count(), sizes[c] - done, rng,
                              targets);
        const auto stats = kernel.score_targets(targets, lanes);
        for (std::uint32_t lane = 0; lane < lanes; ++lane) {
          ++partial.permutations_checked;
          if (stats[lane].colliding_pairs > 0) {
            // Same trial index, pattern, and count as the serial
            // verify_random stopping at its first blocked permutation.
            partial.nonblocking = false;
            partial.counterexample =
                lane_pattern(targets, lane, ftree.leaf_count());
            partial.counterexample_collisions = stats[lane].colliding_pairs;
            break;
          }
        }
        done += lanes;
      }
    });
  }
  pool.wait_idle();

  VerifyResult result;
  result.nonblocking = true;
  for (const auto& partial : partials) {  // lowest failing chunk wins
    result.permutations_checked += partial.permutations_checked;
    if (result.nonblocking && !partial.nonblocking) {
      result.nonblocking = false;
      result.counterexample = partial.counterexample;
      result.counterexample_collisions = partial.counterexample_collisions;
    }
  }
  obs::metrics().counter("verify.perms_evaluated")
      .add(result.permutations_checked);
  return result;
}

VerifyResult verify_exhaustive_parallel(const FoldedClos& ftree,
                                        const PatternRouterFactory& make_router,
                                        ThreadPool& pool,
                                        std::uint32_t shards) {
  const std::uint32_t leafs = ftree.leaf_count();
  NBCLOS_REQUIRE(leafs <= 11, "parallel exhaustive capped at 11!");
  const std::uint64_t total = factorial(leafs);
  if (shards == 0) {
    shards = static_cast<std::uint32_t>(16 * pool.thread_count());
  }
  if (shards > total) shards = static_cast<std::uint32_t>(total);

  struct ShardHit {
    std::uint64_t rank = 0;
    Permutation pattern;
    std::uint64_t collisions = 0;
  };
  std::vector<std::optional<ShardHit>> hits(shards);
  // Lowest counterexample rank found so far; ranks above it are dead.
  std::atomic<std::uint64_t> best_rank{UINT64_MAX};
  // Obs: when the winning counterexample is published (obs_now_ns), so
  // shards that observe the CAS-min and bail can report how quickly the
  // early-exit signal propagated.  Never read by the verification logic.
  std::atomic<std::uint64_t> publish_ns{0};

  obs::ScopedSpan span("verify.exhaustive", "verify");
  span.arg("shards", static_cast<double>(shards));
  span.arg("permutations", static_cast<double>(total));

  const std::uint64_t base = total / shards;
  const std::uint64_t extra = total % shards;
  std::uint64_t begin = 0;
  for (std::uint32_t shard = 0; shard < shards; ++shard) {
    const std::uint64_t end = begin + base + (shard < extra ? 1 : 0);
    const std::uint64_t shard_begin = begin;
    begin = end;
    pool.submit([&, shard, shard_begin, end] {
      const bool observe = obs::kEnabled && obs::enabled();
      const auto record_early_exit = [&] {
        if (!observe) return;
        const auto published = publish_ns.load(std::memory_order_relaxed);
        if (published == 0) return;
        obs::metrics()
            .histogram("verify.early_exit_us", 10'000'000)
            .record((obs_now_ns() - published) / 1000);
      };
      if (shard_begin > best_rank.load(std::memory_order_relaxed)) {
        record_early_exit();
        return;
      }
      const std::uint64_t shard_t0 = observe ? obs_now_ns() : 0;
      std::uint64_t evaluated = 0;
      bool early_exit = false;
      const auto router = make_router(chunk_seed(0, shard));
      LinkLoadMap map(ftree);
      std::uint64_t rank = shard_begin;
      for_each_permutation_in_range(
          ftree.leaf_count(), shard_begin, end,
          [&](const Permutation& pattern) {
            if (rank > best_rank.load(std::memory_order_relaxed)) {
              early_exit = true;
              return false;  // a lower-rank counterexample already exists
            }
            ++evaluated;
            const auto paths = router(pattern);
            map.add_paths(paths);
            const auto collisions = map.colliding_pairs();
            for (const auto& path : paths) map.remove_path(path);
            if (collisions > 0) {
              hits[shard] = ShardHit{rank, pattern, collisions};
              auto current = best_rank.load(std::memory_order_relaxed);
              while (rank < current &&
                     !best_rank.compare_exchange_weak(current, rank)) {
              }
              if (observe) {
                // First publication wins; losers raced a lower rank in.
                std::uint64_t expected = 0;
                publish_ns.compare_exchange_strong(expected, obs_now_ns(),
                                                   std::memory_order_relaxed);
              }
              return false;
            }
            ++rank;
            return true;
          });
      if (observe) {
        // Per-shard rank throughput + flushed-once totals (local counts
        // keep the permutation loop free of shared-metric traffic).
        auto& m = obs::metrics();
        m.counter("verify.perms_evaluated").add(evaluated);
        const std::uint64_t elapsed = obs_now_ns() - shard_t0;
        if (elapsed > 0 && evaluated > 0) {
          m.histogram("verify.shard_ranks_per_s", 1'000'000'000)
              .record(evaluated * 1'000'000'000 / elapsed);
        }
        if (early_exit) record_early_exit();
      }
    });
  }
  pool.wait_idle();

  VerifyResult result;
  result.nonblocking = true;
  result.permutations_checked = total;
  // The shard holding the globally lowest counterexample can never be
  // preempted (preemption requires an even lower rank), so the min over
  // shard hits is the same counterexample serial enumeration stops at.
  for (const auto& hit : hits) {
    if (!hit) continue;
    if (result.nonblocking || hit->rank < result.permutations_checked - 1) {
      result.nonblocking = false;
      result.counterexample = hit->pattern;
      result.counterexample_collisions = hit->collisions;
      result.permutations_checked = hit->rank + 1;
    }
  }
  return result;
}

std::uint64_t adversarial_restart_seed(std::uint64_t seed,
                                       std::uint32_t restart) {
  // Mix the master seed before offsetting by the restart index: a plain
  // `seed ^ (c + restart)` would let nearby master seeds share restart
  // seeds.  Distinct restarts always get distinct seeds (SplitMix64's
  // first output is a bijection of its initial state).
  SplitMix64 stream(seed ^ 0x5EEDF00DULL);
  SplitMix64 per_restart(stream.next() + restart);
  return per_restart.next();
}

VerifyResult verify_adversarial_parallel(const FoldedClos& ftree,
                                         const SinglePathRouting& routing,
                                         const AdversarialOptions& options,
                                         std::uint64_t seed, ThreadPool& pool) {
  std::vector<RestartResult> outcomes(options.restarts);
  obs::ScopedSpan span("verify.adversarial", "verify");
  span.arg("restarts", static_cast<double>(options.restarts));
  // Materialized once, shared read-only by every worker: restarts replay
  // the same flat link runs instead of re-routing on their own.
  const auto cache = routing::RouteCache::materialize(routing);

  // Batch pre-score of every restart's initial pattern.  run_restart
  // scores the shuffled start first and (stop_on_positive) returns it as
  // the counterexample when it already collides, so such restarts are
  // finished after one evaluation — their outcomes come straight from
  // the kernel's lane statistics and never need a climb or a DeltaState.
  // The generation below consumes a fresh per-restart rng exactly like
  // run_restart's reset does, so patterns (and outcomes) are identical.
  std::vector<char> resolved(options.restarts, 0);
  std::atomic<std::uint32_t> first_failing{UINT32_MAX};
  {
    analysis::BatchLoadKernel kernel(cache);
    const std::uint32_t leafs = ftree.leaf_count();
    std::vector<std::uint32_t> targets;
    for (std::uint32_t base = 0; base < options.restarts;
         base += analysis::BatchLoadKernel::kMaxBatch) {
      const auto lanes =
          std::min(analysis::BatchLoadKernel::kMaxBatch,
                   options.restarts - base);
      targets.resize(std::size_t{lanes} * leafs);
      for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        Xoshiro256 rng(adversarial_restart_seed(seed, base + lane));
        const auto seg = targets.begin() + std::ptrdiff_t{lane} * leafs;
        std::iota(seg, seg + leafs, 0U);
        shuffle(seg, seg + leafs, rng);
      }
      const auto stats = kernel.score_targets(targets, lanes);
      for (std::uint32_t lane = 0; lane < lanes; ++lane) {
        if (stats[lane].colliding_pairs == 0) continue;
        const auto restart = base + lane;
        outcomes[restart].collisions = stats[lane].colliding_pairs;
        outcomes[restart].pattern = lane_pattern(targets, lane, leafs);
        outcomes[restart].evaluations = 1;
        resolved[restart] = 1;
        auto current = first_failing.load(std::memory_order_relaxed);
        while (restart < current &&
               !first_failing.compare_exchange_weak(current, restart)) {
        }
      }
      if (base >= first_failing.load(std::memory_order_relaxed)) break;
    }
  }

  // Restarts with an index above the lowest failing one cannot affect the
  // merged result, so they may be skipped opportunistically.
  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    if (resolved[restart] != 0) continue;  // settled by the pre-score
    pool.submit([&, restart] {
      if (restart > first_failing.load(std::memory_order_relaxed)) {
        obs::metrics().counter("verify.restarts_skipped").add(1);
        return;
      }
      outcomes[restart] = adversarial_restart(
          ftree, cache, options.steps_per_restart,
          adversarial_restart_seed(seed, restart), /*stop_on_positive=*/true);
      if (outcomes[restart].collisions > 0) {
        auto current = first_failing.load(std::memory_order_relaxed);
        while (restart < current &&
               !first_failing.compare_exchange_weak(current, restart)) {
        }
      }
    });
  }
  pool.wait_idle();

  VerifyResult result;
  result.nonblocking = true;
  if constexpr (obs::kEnabled) {
    // Hill-climb step counts per restart (the climbs themselves never
    // touch the registry — counts are flushed here, after the join).
    // Fixed geometry: the registry requires identical bounds per name.
    auto& steps = obs::metrics().histogram("verify.climb_steps", 1'000'000);
    for (const auto& outcome : outcomes) {
      if (outcome.evaluations > 0) steps.record(outcome.evaluations);
    }
  }
  for (auto& outcome : outcomes) {  // merge in restart index order
    result.permutations_checked += outcome.evaluations;
    if (outcome.collisions > 0) {
      result.nonblocking = false;
      result.counterexample = std::move(outcome.pattern);
      result.counterexample_collisions = outcome.collisions;
      break;  // identical to a serial run stopping at this restart
    }
  }
  return result;
}

WorstCaseResult worst_case_search_parallel(const FoldedClos& ftree,
                                           const SinglePathRouting& routing,
                                           const AdversarialOptions& options,
                                           std::uint64_t seed,
                                           ThreadPool& pool) {
  std::vector<RestartResult> outcomes(options.restarts);
  obs::ScopedSpan span("verify.worst_case", "verify");
  span.arg("restarts", static_cast<double>(options.restarts));
  const auto cache = routing::RouteCache::materialize(routing);
  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    pool.submit([&, restart] {
      outcomes[restart] = adversarial_restart(
          ftree, cache, options.steps_per_restart,
          adversarial_restart_seed(seed, restart), /*stop_on_positive=*/false);
    });
  }
  pool.wait_idle();

  WorstCaseResult result;
  if constexpr (obs::kEnabled) {
    auto& steps = obs::metrics().histogram("verify.climb_steps", 1'000'000);
    for (const auto& outcome : outcomes) {
      if (outcome.evaluations > 0) steps.record(outcome.evaluations);
    }
  }
  for (auto& outcome : outcomes) {  // max, lowest index on ties
    result.evaluations += outcome.evaluations;
    if (outcome.collisions > result.collisions || result.permutation.empty()) {
      result.collisions = outcome.collisions;
      result.permutation = std::move(outcome.pattern);
    }
  }
  return result;
}

}  // namespace nbclos
