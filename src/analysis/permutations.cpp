#include "nbclos/analysis/permutations.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "nbclos/util/check.hpp"

namespace nbclos {

void validate_permutation(const Permutation& pattern,
                          std::uint32_t leaf_count) {
  std::unordered_set<std::uint32_t> sources;
  std::unordered_set<std::uint32_t> destinations;
  for (const auto sd : pattern) {
    NBCLOS_REQUIRE(sd.src.value < leaf_count && sd.dst.value < leaf_count,
                   "leaf id out of range");
    NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
    NBCLOS_REQUIRE(sources.insert(sd.src.value).second,
                   "source used more than once");
    NBCLOS_REQUIRE(destinations.insert(sd.dst.value).second,
                   "destination used more than once");
  }
}

void permutation_from_targets(const std::vector<std::uint32_t>& target,
                              Permutation& out) {
  out.clear();
  out.reserve(target.size());
  for (std::uint32_t s = 0; s < target.size(); ++s) {
    if (target[s] != s) out.push_back({LeafId{s}, LeafId{target[s]}});
  }
}

Permutation permutation_from_targets(const std::vector<std::uint32_t>& target) {
  Permutation out;
  permutation_from_targets(target, out);
  return out;
}

Permutation random_permutation(std::uint32_t leaf_count, Xoshiro256& rng) {
  std::vector<std::uint32_t> target(leaf_count);
  std::iota(target.begin(), target.end(), 0U);
  shuffle(target.begin(), target.end(), rng);
  return permutation_from_targets(target);
}

Permutation random_partial_permutation(std::uint32_t leaf_count,
                                       std::uint32_t pairs, Xoshiro256& rng) {
  NBCLOS_REQUIRE(pairs <= leaf_count, "more pairs than leaves");
  std::vector<std::uint32_t> sources(leaf_count);
  std::vector<std::uint32_t> dests(leaf_count);
  std::iota(sources.begin(), sources.end(), 0U);
  std::iota(dests.begin(), dests.end(), 0U);
  shuffle(sources.begin(), sources.end(), rng);
  shuffle(dests.begin(), dests.end(), rng);
  Permutation out;
  out.reserve(pairs);
  for (std::uint32_t i = 0; i < pairs; ++i) {
    if (sources[i] != dests[i]) {
      out.push_back({LeafId{sources[i]}, LeafId{dests[i]}});
    }
  }
  return out;
}

Permutation shift_permutation(std::uint32_t leaf_count, std::uint32_t offset) {
  NBCLOS_REQUIRE(offset > 0 && offset < leaf_count, "invalid shift offset");
  Permutation out;
  out.reserve(leaf_count);
  for (std::uint32_t s = 0; s < leaf_count; ++s) {
    out.push_back({LeafId{s}, LeafId{(s + offset) % leaf_count}});
  }
  return out;
}

Permutation reverse_permutation(std::uint32_t leaf_count) {
  Permutation out;
  out.reserve(leaf_count);
  for (std::uint32_t s = 0; s < leaf_count; ++s) {
    const std::uint32_t d = leaf_count - 1 - s;
    if (d != s) out.push_back({LeafId{s}, LeafId{d}});
  }
  return out;
}

Permutation bit_reversal_permutation(std::uint32_t leaf_count) {
  NBCLOS_REQUIRE(leaf_count >= 2 && (leaf_count & (leaf_count - 1)) == 0,
                 "bit reversal needs a power-of-two leaf count");
  std::uint32_t bits = 0;
  while ((1U << bits) < leaf_count) ++bits;
  Permutation out;
  for (std::uint32_t s = 0; s < leaf_count; ++s) {
    std::uint32_t d = 0;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if (s & (1U << b)) d |= 1U << (bits - 1 - b);
    }
    if (d != s) out.push_back({LeafId{s}, LeafId{d}});
  }
  return out;
}

Permutation butterfly_permutation(std::uint32_t leaf_count,
                                  std::uint32_t stage) {
  NBCLOS_REQUIRE(leaf_count >= 2 && (leaf_count & (leaf_count - 1)) == 0,
                 "butterfly needs a power-of-two leaf count");
  NBCLOS_REQUIRE((1U << stage) < leaf_count, "stage out of range");
  Permutation out;
  out.reserve(leaf_count);
  for (std::uint32_t s = 0; s < leaf_count; ++s) {
    out.push_back({LeafId{s}, LeafId{s ^ (1U << stage)}});
  }
  return out;
}

Permutation tornado_permutation(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid topology parameters");
  const std::uint32_t half = r / 2 == 0 ? 1 : r / 2;
  Permutation out;
  out.reserve(std::size_t{n} * r);
  for (std::uint32_t v = 0; v < r; ++v) {
    for (std::uint32_t k = 0; k < n; ++k) {
      const std::uint32_t w = (v + half) % r;
      if (w == v) continue;
      out.push_back({LeafId{v * n + k}, LeafId{w * n + k}});
    }
  }
  return out;
}

Permutation neighbor_funnel_permutation(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid topology parameters");
  Permutation out;
  out.reserve(std::size_t{n} * r);
  for (std::uint32_t v = 0; v < r; ++v) {
    const std::uint32_t w = (v + 1) % r;
    for (std::uint32_t k = 0; k < n; ++k) {
      out.push_back({LeafId{v * n + k}, LeafId{w * n + (n - 1 - k)}});
    }
  }
  return out;
}

std::uint64_t factorial(std::uint32_t k) {
  NBCLOS_REQUIRE(k <= 20, "k! overflows uint64 beyond 20");
  std::uint64_t f = 1;
  for (std::uint32_t i = 2; i <= k; ++i) f *= i;
  return f;
}

std::vector<std::uint32_t> unrank_targets(std::uint32_t leaf_count,
                                          std::uint64_t rank) {
  NBCLOS_REQUIRE(leaf_count >= 1 && leaf_count <= 20,
                 "unrank supports 1..20 leaves");
  NBCLOS_REQUIRE(rank < factorial(leaf_count), "rank out of range");
  // Factorial number system: digit i of `rank` (base (leaf_count-1-i)!)
  // selects the i-th smallest unused value.
  std::vector<std::uint32_t> pool(leaf_count);
  std::iota(pool.begin(), pool.end(), 0U);
  std::vector<std::uint32_t> target;
  target.reserve(leaf_count);
  std::uint64_t radix = factorial(leaf_count);
  for (std::uint32_t i = 0; i < leaf_count; ++i) {
    radix /= leaf_count - i;
    const auto digit = static_cast<std::uint32_t>(rank / radix);
    rank %= radix;
    target.push_back(pool[digit]);
    pool.erase(pool.begin() + digit);
  }
  return target;
}

std::uint64_t rank_of_targets(const std::vector<std::uint32_t>& target) {
  const auto leaf_count = static_cast<std::uint32_t>(target.size());
  NBCLOS_REQUIRE(leaf_count >= 1 && leaf_count <= 20,
                 "rank supports 1..20 leaves");
  std::uint64_t rank = 0;
  std::uint64_t radix = factorial(leaf_count);
  for (std::uint32_t i = 0; i < leaf_count; ++i) {
    radix /= leaf_count - i;
    std::uint32_t smaller = 0;  // unused values below target[i]
    for (std::uint32_t j = i + 1; j < leaf_count; ++j) {
      if (target[j] < target[i]) ++smaller;
    }
    rank += smaller * radix;
  }
  return rank;
}

std::uint64_t for_each_permutation(
    std::uint32_t leaf_count,
    const std::function<void(const Permutation&)>& fn) {
  NBCLOS_REQUIRE(leaf_count >= 1, "need at least one leaf");
  NBCLOS_REQUIRE(leaf_count <= 10, "exhaustive enumeration capped at 10!");
  return for_each_permutation_in_range(leaf_count, 0, factorial(leaf_count),
                                       [&fn](const Permutation& pattern) {
                                         fn(pattern);
                                         return true;
                                       });
}

std::uint64_t for_each_permutation_in_range(
    std::uint32_t leaf_count, std::uint64_t begin_rank, std::uint64_t end_rank,
    const std::function<bool(const Permutation&)>& fn) {
  NBCLOS_REQUIRE(leaf_count >= 1, "need at least one leaf");
  NBCLOS_REQUIRE(begin_rank <= end_rank && end_rank <= factorial(leaf_count),
                 "invalid rank range");
  if (begin_rank == end_rank) return 0;
  // std::next_permutation walks lexicographic order, which is exactly
  // rank order, so one unrank seeds the whole range.
  std::vector<std::uint32_t> target = unrank_targets(leaf_count, begin_rank);
  Permutation pattern;
  std::uint64_t visited = 0;
  for (std::uint64_t rank = begin_rank; rank < end_rank; ++rank) {
    permutation_from_targets(target, pattern);
    ++visited;
    if (!fn(pattern)) break;
    std::next_permutation(target.begin(), target.end());
  }
  return visited;
}

}  // namespace nbclos
