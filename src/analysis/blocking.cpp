#include "nbclos/analysis/blocking.hpp"

#include <cmath>

#include "nbclos/analysis/contention.hpp"

namespace nbclos {

BlockingEstimate estimate_blocking(const FoldedClos& ftree,
                                   const PatternRouter& router,
                                   std::uint64_t trials, Xoshiro256& rng) {
  NBCLOS_REQUIRE(trials > 0, "need at least one trial");
  BlockingEstimate est;
  est.trials = trials;
  double sum_collisions = 0.0;
  double sum_max_load = 0.0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto pattern = random_permutation(ftree.leaf_count(), rng);
    LinkLoadMap map(ftree);
    map.add_paths(router(pattern));
    const auto collisions = map.colliding_pairs();
    if (collisions > 0) ++est.blocked;
    sum_collisions += static_cast<double>(collisions);
    sum_max_load += static_cast<double>(map.max_load());
  }
  const auto n = static_cast<double>(trials);
  est.blocking_probability = static_cast<double>(est.blocked) / n;
  est.mean_colliding_pairs = sum_collisions / n;
  est.mean_max_link_load = sum_max_load / n;
  const double p = est.blocking_probability;
  est.ci95_half_width = 1.96 * std::sqrt(p * (1.0 - p) / n);
  return est;
}

}  // namespace nbclos
