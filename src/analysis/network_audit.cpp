#include "nbclos/analysis/network_audit.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos {

std::uint32_t ChannelLoadMap::contended_channels() const {
  std::uint32_t count = 0;
  for (const auto l : load_) {
    if (l >= 2) ++count;
  }
  return count;
}

std::uint64_t ChannelLoadMap::colliding_pairs() const {
  std::uint64_t pairs = 0;
  for (const auto l : load_) {
    pairs += std::uint64_t{l} * (l - 1) / 2;
  }
  return pairs;
}

bool network_has_contention(const Network& net,
                            const std::vector<ChannelPath>& paths) {
  ChannelLoadMap map(net);
  for (const auto& path : paths) map.add_path(path);
  return !map.contention_free();
}

std::vector<std::uint32_t> network_lemma1_audit(const Network& net,
                                                const NetworkRouteFn& route) {
  const auto terminals = net.terminals();
  constexpr std::uint32_t kEmpty = UINT32_MAX;
  struct ChannelState {
    std::uint32_t src = kEmpty;
    std::uint32_t dst = kEmpty;
    bool src_many = false;
    bool dst_many = false;
  };
  std::vector<ChannelState> state(net.channel_count());
  for (std::uint32_t s = 0; s < terminals.size(); ++s) {
    for (std::uint32_t d = 0; d < terminals.size(); ++d) {
      if (s == d) continue;
      const SDPair sd{LeafId{s}, LeafId{d}};
      for (const auto c : route(sd)) {
        NBCLOS_REQUIRE(c < net.channel_count(), "channel out of range");
        auto& st = state[c];
        if (st.src == kEmpty) {
          st.src = s;
          st.dst = d;
        } else {
          if (st.src != s) st.src_many = true;
          if (st.dst != d) st.dst_many = true;
        }
      }
    }
  }
  std::vector<std::uint32_t> violations;
  for (std::uint32_t c = 0; c < state.size(); ++c) {
    if (state[c].src_many && state[c].dst_many) violations.push_back(c);
  }
  return violations;
}

void validate_channel_path(const Network& net, std::uint32_t src_terminal,
                           std::uint32_t dst_terminal,
                           const ChannelPath& path) {
  NBCLOS_REQUIRE(!path.empty(), "empty channel path");
  NBCLOS_REQUIRE(net.channel(path.front()).src == src_terminal,
                 "path does not start at the source terminal");
  NBCLOS_REQUIRE(net.channel(path.back()).dst == dst_terminal,
                 "path does not end at the destination terminal");
  for (std::size_t i = 1; i < path.size(); ++i) {
    NBCLOS_REQUIRE(net.channel(path[i - 1]).dst == net.channel(path[i]).src,
                   "path channels do not chain");
  }
}

}  // namespace nbclos
