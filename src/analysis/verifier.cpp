#include "nbclos/analysis/verifier.hpp"

#include <algorithm>
#include <numeric>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/single_path.hpp"

namespace nbclos {

PatternRouter as_pattern_router(const SinglePathRouting& routing) {
  return [&routing](const Permutation& pattern) {
    return routing.route_all(pattern);
  };
}

namespace {

std::uint64_t collisions_of(const FoldedClos& ftree,
                            const std::vector<FtreePath>& paths) {
  LinkLoadMap map(ftree);
  map.add_paths(paths);
  return map.colliding_pairs();
}

}  // namespace

VerifyResult verify_exhaustive(const FoldedClos& ftree,
                               const PatternRouter& router) {
  VerifyResult result;
  result.nonblocking = true;
  result.permutations_checked = for_each_permutation(
      ftree.leaf_count(), [&](const Permutation& pattern) {
        if (!result.nonblocking) return;  // counterexample already found
        const auto collisions = collisions_of(ftree, router(pattern));
        if (collisions > 0) {
          result.nonblocking = false;
          result.counterexample = pattern;
          result.counterexample_collisions = collisions;
        }
      });
  return result;
}

VerifyResult verify_random(const FoldedClos& ftree,
                           const PatternRouter& router, std::uint64_t trials,
                           Xoshiro256& rng) {
  VerifyResult result;
  result.nonblocking = true;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto pattern = random_permutation(ftree.leaf_count(), rng);
    ++result.permutations_checked;
    const auto collisions = collisions_of(ftree, router(pattern));
    if (collisions > 0) {
      result.nonblocking = false;
      result.counterexample = pattern;
      result.counterexample_collisions = collisions;
      return result;
    }
  }
  return result;
}

WorstCaseResult worst_case_search(const FoldedClos& ftree,
                                  const PatternRouter& router,
                                  const AdversarialOptions& options,
                                  Xoshiro256& rng) {
  WorstCaseResult result;
  const std::uint32_t leafs = ftree.leaf_count();
  const auto to_pattern = [](const std::vector<std::uint32_t>& t) {
    Permutation p;
    p.reserve(t.size());
    for (std::uint32_t s = 0; s < t.size(); ++s) {
      if (t[s] != s) p.push_back({LeafId{s}, LeafId{t[s]}});
    }
    return p;
  };

  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    std::vector<std::uint32_t> target(leafs);
    std::iota(target.begin(), target.end(), 0U);
    shuffle(target.begin(), target.end(), rng);
    auto pattern = to_pattern(target);
    std::uint64_t best = collisions_of(ftree, router(pattern));
    ++result.evaluations;
    for (std::uint32_t step = 0; step < options.steps_per_restart; ++step) {
      const auto i = static_cast<std::uint32_t>(rng.below(leafs));
      const auto j = static_cast<std::uint32_t>(rng.below(leafs));
      if (i == j) continue;
      std::swap(target[i], target[j]);
      const auto candidate = to_pattern(target);
      const auto collisions = collisions_of(ftree, router(candidate));
      ++result.evaluations;
      if (collisions >= best) {
        best = collisions;
        pattern = std::move(candidate);
      } else {
        std::swap(target[i], target[j]);  // revert
      }
    }
    if (best > result.collisions || result.permutation.empty()) {
      result.collisions = best;
      result.permutation = pattern;
    }
  }
  return result;
}

VerifyResult verify_adversarial(const FoldedClos& ftree,
                                const PatternRouter& router,
                                const AdversarialOptions& options,
                                Xoshiro256& rng) {
  VerifyResult result;
  result.nonblocking = true;
  const std::uint32_t leafs = ftree.leaf_count();

  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    // State: a full target vector; mutation swaps two targets.  The
    // vector form keeps the permutation property invariant by
    // construction.
    std::vector<std::uint32_t> target(leafs);
    std::iota(target.begin(), target.end(), 0U);
    shuffle(target.begin(), target.end(), rng);

    const auto to_pattern = [](const std::vector<std::uint32_t>& t) {
      Permutation p;
      p.reserve(t.size());
      for (std::uint32_t s = 0; s < t.size(); ++s) {
        if (t[s] != s) p.push_back({LeafId{s}, LeafId{t[s]}});
      }
      return p;
    };

    auto pattern = to_pattern(target);
    std::uint64_t best = collisions_of(ftree, router(pattern));
    ++result.permutations_checked;

    for (std::uint32_t step = 0;
         step < options.steps_per_restart && best == 0; ++step) {
      const auto i = static_cast<std::uint32_t>(rng.below(leafs));
      const auto j = static_cast<std::uint32_t>(rng.below(leafs));
      if (i == j) continue;
      std::swap(target[i], target[j]);
      const auto candidate = to_pattern(target);
      const auto collisions = collisions_of(ftree, router(candidate));
      ++result.permutations_checked;
      if (collisions >= best) {
        best = collisions;
        pattern = candidate;
      } else {
        std::swap(target[i], target[j]);  // revert
      }
    }
    if (best > 0) {
      result.nonblocking = false;
      result.counterexample = pattern;
      result.counterexample_collisions = best;
      return result;
    }
  }
  return result;
}

}  // namespace nbclos
