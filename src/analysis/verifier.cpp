#include "nbclos/analysis/verifier.hpp"

#include <algorithm>
#include <numeric>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/delta.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/single_path.hpp"

namespace nbclos {

PatternRouter as_pattern_router(const SinglePathRouting& routing) {
  return [&routing](const Permutation& pattern) {
    return routing.route_all(pattern);
  };
}

namespace {

/// Full-re-evaluation counterpart of SwapDeltaState: same interface, but
/// collisions() scores the whole pattern through the router.  Evaluation
/// is lazy so that a revert_swap never pays for scoring, matching the
/// cost profile of the pre-delta hill climb while reusing its buffers.
class FullSwapState {
 public:
  FullSwapState(const FoldedClos& ftree, const PatternRouter& router)
      : router_(&router), map_(ftree) {}

  void reset(const std::vector<std::uint32_t>& target) {
    target_ = target;
    dirty_ = true;
  }

  void apply_swap(std::uint32_t i, std::uint32_t j) {
    prev_collisions_ = collisions();
    std::swap(target_[i], target_[j]);
    dirty_ = true;
  }

  void revert_swap(std::uint32_t i, std::uint32_t j) {
    std::swap(target_[i], target_[j]);
    collisions_ = prev_collisions_;
    dirty_ = false;
  }

  [[nodiscard]] std::uint64_t collisions() {
    if (dirty_) {
      permutation_from_targets(target_, pattern_);
      map_.clear();
      map_.add_paths((*router_)(pattern_));
      collisions_ = map_.colliding_pairs();
      dirty_ = false;
    }
    return collisions_;
  }

  [[nodiscard]] Permutation pattern() const {
    return permutation_from_targets(target_);
  }

 private:
  const PatternRouter* router_;
  LinkLoadMap map_;
  std::vector<std::uint32_t> target_;
  Permutation pattern_;
  std::uint64_t collisions_ = 0;
  std::uint64_t prev_collisions_ = 0;
  bool dirty_ = true;
};

/// Thin adapter giving SwapDeltaState the revert_swap the core expects
/// (a delta swap is its own inverse).
class DeltaState {
 public:
  DeltaState(const FoldedClos& ftree, const SinglePathRouting& routing)
      : state_(ftree, routing) {}
  DeltaState(const FoldedClos& ftree, const routing::RouteCache& cache)
      : state_(ftree, cache) {}
  void reset(const std::vector<std::uint32_t>& target) { state_.reset(target); }
  void apply_swap(std::uint32_t i, std::uint32_t j) { state_.apply_swap(i, j); }
  void revert_swap(std::uint32_t i, std::uint32_t j) {
    state_.apply_swap(i, j);
  }
  [[nodiscard]] std::uint64_t collisions() { return state_.collisions(); }
  [[nodiscard]] Permutation pattern() const { return state_.pattern(); }

 private:
  SwapDeltaState state_;
};

/// The hill climb shared by both evaluation strategies: accept a swap
/// when it does not decrease the colliding-pair count, revert otherwise.
template <typename State>
RestartResult run_restart(State& state, std::uint32_t leafs,
                          std::uint32_t steps, std::uint64_t seed,
                          bool stop_on_positive) {
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> target(leafs);
  std::iota(target.begin(), target.end(), 0U);
  shuffle(target.begin(), target.end(), rng);
  state.reset(target);

  RestartResult result;
  result.collisions = state.collisions();
  result.evaluations = 1;
  for (std::uint32_t step = 0;
       step < steps && !(stop_on_positive && result.collisions > 0); ++step) {
    const auto i = static_cast<std::uint32_t>(rng.below(leafs));
    const auto j = static_cast<std::uint32_t>(rng.below(leafs));
    if (i == j) continue;
    state.apply_swap(i, j);
    const auto collisions = state.collisions();
    ++result.evaluations;
    if (collisions >= result.collisions) {
      result.collisions = collisions;
    } else {
      state.revert_swap(i, j);
    }
  }
  result.pattern = state.pattern();
  return result;
}

/// Serial restart drivers: per-restart seeds drawn from the caller's rng
/// up front, so restarts stay independent (and mergeable in index order)
/// exactly like the parallel drivers in analysis/parallel.cpp.
template <typename RoutingLike>
VerifyResult verify_adversarial_impl(const FoldedClos& ftree,
                                     const RoutingLike& routing,
                                     const AdversarialOptions& options,
                                     Xoshiro256& rng) {
  VerifyResult result;
  result.nonblocking = true;
  obs::ScopedSpan span("verify.adversarial", "verify");
  span.arg("restarts", static_cast<double>(options.restarts));
  auto& climb_steps = obs::metrics().histogram("verify.climb_steps",
                                               1'000'000);
  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    const auto outcome = adversarial_restart(
        ftree, routing, options.steps_per_restart, rng(),
        /*stop_on_positive=*/true);
    if (outcome.evaluations > 0) climb_steps.record(outcome.evaluations);
    result.permutations_checked += outcome.evaluations;
    if (outcome.collisions > 0) {
      result.nonblocking = false;
      result.counterexample = outcome.pattern;
      result.counterexample_collisions = outcome.collisions;
      return result;
    }
  }
  return result;
}

template <typename RoutingLike>
WorstCaseResult worst_case_search_impl(const FoldedClos& ftree,
                                       const RoutingLike& routing,
                                       const AdversarialOptions& options,
                                       Xoshiro256& rng) {
  WorstCaseResult result;
  for (std::uint32_t restart = 0; restart < options.restarts; ++restart) {
    auto outcome = adversarial_restart(ftree, routing,
                                       options.steps_per_restart, rng(),
                                       /*stop_on_positive=*/false);
    result.evaluations += outcome.evaluations;
    if (outcome.collisions > result.collisions ||
        result.permutation.empty()) {
      result.collisions = outcome.collisions;
      result.permutation = std::move(outcome.pattern);
    }
  }
  return result;
}

}  // namespace

VerifyResult verify_exhaustive(const FoldedClos& ftree,
                               const PatternRouter& router) {
  VerifyResult result;
  result.nonblocking = true;
  obs::ScopedSpan span("verify.exhaustive", "verify");
  LinkLoadMap map(ftree);
  result.permutations_checked = for_each_permutation_in_range(
      ftree.leaf_count(), 0, factorial(ftree.leaf_count()),
      [&](const Permutation& pattern) {
        const auto paths = router(pattern);
        map.add_paths(paths);
        const auto collisions = map.colliding_pairs();
        for (const auto& path : paths) map.remove_path(path);  // keep map zero
        if (collisions > 0) {
          result.nonblocking = false;
          result.counterexample = pattern;
          result.counterexample_collisions = collisions;
          return false;
        }
        return true;
      });
  obs::metrics().counter("verify.perms_evaluated")
      .add(result.permutations_checked);
  return result;
}

VerifyResult verify_random(const FoldedClos& ftree,
                           const PatternRouter& router, std::uint64_t trials,
                           Xoshiro256& rng) {
  VerifyResult result;
  result.nonblocking = true;
  LinkLoadMap map(ftree);
  for (std::uint64_t t = 0; t < trials; ++t) {
    const auto pattern = random_permutation(ftree.leaf_count(), rng);
    ++result.permutations_checked;
    map.clear();
    map.add_paths(router(pattern));
    const auto collisions = map.colliding_pairs();
    if (collisions > 0) {
      result.nonblocking = false;
      result.counterexample = pattern;
      result.counterexample_collisions = collisions;
      return result;
    }
  }
  return result;
}

RestartResult adversarial_restart(const FoldedClos& ftree,
                                  const PatternRouter& router,
                                  std::uint32_t steps, std::uint64_t seed,
                                  bool stop_on_positive) {
  FullSwapState state(ftree, router);
  return run_restart(state, ftree.leaf_count(), steps, seed, stop_on_positive);
}

RestartResult adversarial_restart(const FoldedClos& ftree,
                                  const SinglePathRouting& routing,
                                  std::uint32_t steps, std::uint64_t seed,
                                  bool stop_on_positive) {
  DeltaState state(ftree, routing);
  return run_restart(state, ftree.leaf_count(), steps, seed, stop_on_positive);
}

RestartResult adversarial_restart(const FoldedClos& ftree,
                                  const routing::RouteCache& cache,
                                  std::uint32_t steps, std::uint64_t seed,
                                  bool stop_on_positive) {
  DeltaState state(ftree, cache);
  return run_restart(state, ftree.leaf_count(), steps, seed, stop_on_positive);
}

VerifyResult verify_adversarial(const FoldedClos& ftree,
                                const PatternRouter& router,
                                const AdversarialOptions& options,
                                Xoshiro256& rng) {
  return verify_adversarial_impl(ftree, router, options, rng);
}

VerifyResult verify_adversarial(const FoldedClos& ftree,
                                const SinglePathRouting& routing,
                                const AdversarialOptions& options,
                                Xoshiro256& rng) {
  // One cache materialization amortized across every restart: the climbs
  // replay flat link runs instead of re-routing <= 4 pairs per step.
  const auto cache = routing::RouteCache::materialize(routing);
  return verify_adversarial_impl(ftree, cache, options, rng);
}

WorstCaseResult worst_case_search(const FoldedClos& ftree,
                                  const PatternRouter& router,
                                  const AdversarialOptions& options,
                                  Xoshiro256& rng) {
  return worst_case_search_impl(ftree, router, options, rng);
}

WorstCaseResult worst_case_search(const FoldedClos& ftree,
                                  const SinglePathRouting& routing,
                                  const AdversarialOptions& options,
                                  Xoshiro256& rng) {
  const auto cache = routing::RouteCache::materialize(routing);
  return worst_case_search_impl(ftree, cache, options, rng);
}

}  // namespace nbclos
