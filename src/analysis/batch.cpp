#include "nbclos/analysis/batch.hpp"

#include <algorithm>

namespace nbclos::analysis {

std::span<const BatchLoadKernel::LaneStats> BatchLoadKernel::score_targets(
    std::span<const std::uint32_t> targets, std::uint32_t lanes) {
  NBCLOS_REQUIRE(lanes >= 1 && lanes <= kMaxBatch,
                 "batch lane count out of range");
  NBCLOS_REQUIRE(targets.size() == std::size_t{lanes} * leafs_,
                 "targets must hold lanes * leaf_count entries");

  touched_.clear();
  std::uint64_t lookups = 0;
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    auto& st = stats_[lane];
    st = LaneStats{};
    std::uint32_t* const seg = load_.data() + std::size_t{lane} * links_;
    const std::uint32_t base = lane * leafs_;
    for (std::uint32_t s = 0; s < leafs_; ++s) {
      const std::uint32_t d = targets[base + s];
      if (d == s) continue;
      ++lookups;
      for (const auto link : cache_->links(s, d)) {
        auto& l = seg[link];
        if (l == 0) touched_.push_back(lane * links_ + link);
        st.colliding_pairs += l;
        if (++l == 2) ++st.contended_links;
        if (l > st.max_load) st.max_load = l;
      }
    }
  }
  for (const auto slot : touched_) load_[slot] = 0;
  routing::RouteCache::note_lookups(lookups);
  return {stats_.data(), lanes};
}

}  // namespace nbclos::analysis
