#include "nbclos/analysis/root_capacity.hpp"

#include <algorithm>

#include "nbclos/util/check.hpp"

namespace nbclos {

std::uint64_t root_capacity_bound(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  if (r >= 2 * n + 1) return std::uint64_t{r} * (r - 1);
  return std::uint64_t{2} * n * r;
}

namespace {

/// Uplink mode: source mode (`kSrc`, designated source = local node 0 of
/// the switch) or destination mode pointing at switch w (designated
/// destination = local node 0 of w).  Encoded as: kSrc = r, else the
/// target switch index w != v.
///
/// Normalization argument (why designating local node 0 everywhere is
/// WLOG): feasibility and the pair count only reference *equality* of
/// source/destination nodes, never their identities, and contributions
/// from different (uplink, downlink) slots involve distinct (s, d) node
/// pairs, so relabeling nodes within each switch maps any optimal
/// solution to one where every designated node has local index 0 without
/// changing the count.
struct ModeSearch {
  std::uint32_t n;
  std::uint32_t r;
  std::vector<std::uint32_t> up_mode;  // per switch: r == kSrc, else target w

  [[nodiscard]] std::uint64_t best_total() {
    return recurse(0);
  }

 private:
  std::uint64_t recurse(std::uint32_t v) {
    if (v == r) return evaluate();
    std::uint64_t best = 0;
    up_mode[v] = r;  // source mode
    best = std::max(best, recurse(v + 1));
    for (std::uint32_t w = 0; w < r; ++w) {
      if (w == v) continue;
      up_mode[v] = w;  // destination mode toward (w, 0)
      best = std::max(best, recurse(v + 1));
    }
    return best;
  }

  /// With uplink modes fixed, each downlink w independently picks its
  /// best mode: destination mode (aggregate node (w,0)) or source mode
  /// designated (v', 0) for the best v'.
  [[nodiscard]] std::uint64_t evaluate() const {
    std::uint64_t total = 0;
    for (std::uint32_t w = 0; w < r; ++w) {
      // Option A: downlink w in destination mode.  Every source-mode
      // uplink v contributes pair ((v,0),(w,0)); every destination-mode
      // uplink targeting w contributes n pairs ((v,*),(w,0)).
      std::uint64_t dest_mode = 0;
      for (std::uint32_t v = 0; v < r; ++v) {
        if (v == w) continue;
        if (up_mode[v] == r) {
          dest_mode += 1;
        } else if (up_mode[v] == w) {
          dest_mode += n;
        }
      }
      // Option B: downlink w in source mode designated (v',0): only
      // pairs from (v',0).  If uplink v' is in source mode, (v',0) may
      // fan out to all n destinations in w; if uplink v' is in
      // destination mode targeting w, only ((v',0),(w,0)) fits both.
      std::uint64_t src_mode = 0;
      for (std::uint32_t v = 0; v < r; ++v) {
        if (v == w) continue;
        const std::uint64_t contribution =
            (up_mode[v] == r) ? n : (up_mode[v] == w ? 1 : 0);
        src_mode = std::max(src_mode, contribution);
      }
      total += std::max(dest_mode, src_mode);
    }
    return total;
  }
};

}  // namespace

std::uint64_t root_capacity_exact(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  NBCLOS_REQUIRE(r <= 8, "mode search capped at r = 8");
  ModeSearch search{n, r, std::vector<std::uint32_t>(r, 0)};
  return search.best_total();
}

bool root_set_feasible(std::uint32_t n, std::uint32_t r,
                       const std::vector<SDPair>& pairs) {
  // Track per uplink/downlink whether all pairs share a source or share a
  // destination.
  constexpr std::uint32_t kEmpty = UINT32_MAX;
  struct LinkState {
    std::uint32_t src = kEmpty;
    std::uint32_t dst = kEmpty;
    bool src_same = true;
    bool dst_same = true;
  };
  std::vector<LinkState> up(r);
  std::vector<LinkState> down(r);
  const auto note = [](LinkState& state, const SDPair sd) {
    if (state.src == kEmpty) {
      state.src = sd.src.value;
      state.dst = sd.dst.value;
      return true;
    }
    if (state.src != sd.src.value) state.src_same = false;
    if (state.dst != sd.dst.value) state.dst_same = false;
    return state.src_same || state.dst_same;
  };
  for (const auto sd : pairs) {
    const std::uint32_t v = sd.src.value / n;
    const std::uint32_t w = sd.dst.value / n;
    NBCLOS_REQUIRE(v < r && w < r, "leaf id out of range");
    NBCLOS_REQUIRE(v != w, "root capacity concerns cross pairs only");
    if (!note(up[v], sd)) return false;
    if (!note(down[w], sd)) return false;
  }
  return true;
}

namespace {

struct BruteForce {
  std::uint32_t n;
  std::uint32_t r;
  std::vector<SDPair> all_pairs;
  std::vector<SDPair> chosen;
  std::uint64_t best = 0;

  void run() { recurse(0); }

  void recurse(std::size_t index) {
    best = std::max(best, static_cast<std::uint64_t>(chosen.size()));
    if (index == all_pairs.size()) return;
    // Bound: even taking every remaining pair cannot beat best.
    if (chosen.size() + (all_pairs.size() - index) <= best) return;
    // Include, if still feasible.
    chosen.push_back(all_pairs[index]);
    if (root_set_feasible(n, r, chosen)) recurse(index + 1);
    chosen.pop_back();
    // Exclude.
    recurse(index + 1);
  }
};

}  // namespace

std::uint64_t root_capacity_bruteforce(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  const std::uint64_t pair_count =
      std::uint64_t{r} * (r - 1) * n * n;
  NBCLOS_REQUIRE(pair_count <= 30, "brute force capped at 30 SD pairs");
  BruteForce search{n, r, {}, {}, 0};
  for (std::uint32_t s = 0; s < n * r; ++s) {
    for (std::uint32_t d = 0; d < n * r; ++d) {
      if (s / n == d / n) continue;
      search.all_pairs.push_back({LeafId{s}, LeafId{d}});
    }
  }
  search.run();
  return search.best;
}

std::vector<SDPair> root_capacity_witness(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  std::vector<SDPair> pairs;
  pairs.reserve(std::size_t{r} * (r - 1));
  for (std::uint32_t v = 0; v < r; ++v) {
    for (std::uint32_t w = 0; w < r; ++w) {
      if (v == w) continue;
      pairs.push_back({LeafId{v * n + 0}, LeafId{w * n + 0}});
    }
  }
  return pairs;
}

}  // namespace nbclos
