#include "nbclos/analysis/root_capacity.hpp"

#include <algorithm>

#include "nbclos/util/check.hpp"

namespace nbclos {

std::uint64_t root_capacity_bound(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  if (r >= 2 * n + 1) return std::uint64_t{r} * (r - 1);
  return std::uint64_t{2} * n * r;
}

namespace {

/// Uplink mode: source mode (`kSrc`, designated source = local node 0 of
/// the switch) or destination mode pointing at switch w (designated
/// destination = local node 0 of w).  Encoded as: kSrc = r, else the
/// target switch index w != v.
///
/// Normalization argument (why designating local node 0 everywhere is
/// WLOG): feasibility and the pair count only reference *equality* of
/// source/destination nodes, never their identities, and contributions
/// from different (uplink, downlink) slots involve distinct (s, d) node
/// pairs, so relabeling nodes within each switch maps any optimal
/// solution to one where every designated node has local index 0 without
/// changing the count.
///
/// The search is depth-first over uplink modes for switches 0..r-1 with
/// branch-and-bound: per-switch counters (source-mode count, per-downlink
/// target count) make the leaf evaluation and the admissible upper bound
/// incremental, and an optimal-prefix symmetry break at the root fixes
/// up_mode[0] to {source, target switch 1} — relabeling switches 1..r-1
/// maps any optimum onto that prefix.  This lifts the practical cap from
/// r = 8 (the old O(r^r * r^2) full enumeration) to r = 10.
struct ModeSearch {
  std::uint32_t n;
  std::uint32_t r;
  std::vector<std::uint32_t> up_mode;  // per switch: r == kSrc, else target w
  std::vector<std::uint32_t> targets;  // per downlink: decided uplinks aiming at it
  std::uint32_t src_count = 0;         // decided source-mode uplinks
  std::uint64_t best = 0;

  [[nodiscard]] std::uint64_t best_total() {
    // Root symmetry break: explore source mode and a single
    // representative destination target.
    up_mode[0] = r;
    ++src_count;
    recurse(1);
    --src_count;
    if (r >= 2) {
      up_mode[0] = 1;
      ++targets[1];
      recurse(1);
      --targets[1];
    }
    return best;
  }

 private:
  /// Contribution of decided uplinks to downlink w's destination mode:
  /// every source-mode uplink != w adds pair ((v,0),(w,0)); every uplink
  /// targeting w adds n pairs ((v,*),(w,0)).  An uplink never targets
  /// itself, so only the source count needs the v != w exclusion.
  [[nodiscard]] std::uint64_t dest_mode(std::uint32_t w,
                                        std::uint32_t decided) const {
    const bool w_is_decided_src = w < decided && up_mode[w] == r;
    return (src_count - (w_is_decided_src ? 1U : 0U)) +
           std::uint64_t{n} * targets[w];
  }

  /// Best single-uplink contribution to downlink w's source mode: n from
  /// any source-mode uplink != w, else 1 from an uplink targeting w.
  [[nodiscard]] std::uint64_t src_mode(std::uint32_t w,
                                       std::uint32_t decided) const {
    const bool w_is_decided_src = w < decided && up_mode[w] == r;
    if (src_count > (w_is_decided_src ? 1U : 0U)) return n;
    return targets[w] > 0 ? 1 : 0;
  }

  void recurse(std::uint32_t v) {
    if (v == r) {
      std::uint64_t total = 0;
      for (std::uint32_t w = 0; w < r; ++w) {
        total += std::max(dest_mode(w, r), src_mode(w, r));
      }
      best = std::max(best, total);
      return;
    }
    if (upper_bound(v) <= best) return;
    up_mode[v] = r;  // source mode
    ++src_count;
    recurse(v + 1);
    --src_count;
    for (std::uint32_t w = 0; w < r; ++w) {
      if (w == v) continue;
      up_mode[v] = w;  // destination mode toward (w, 0)
      ++targets[w];
      recurse(v + 1);
      --targets[w];
    }
  }

  /// Admissible bound with uplinks 0..v-1 decided.  Per downlink the
  /// final value is max(dest_now + future_dest, src_final) with
  /// src_final <= max(src_now, n), and max(a + f, b) <= max(a, b, n) + f;
  /// summed over downlinks, the future destination-mode contributions of
  /// each undecided uplink total at most max(n, r-1) (n when targeting
  /// one downlink, r-1 ones when in source mode).
  [[nodiscard]] std::uint64_t upper_bound(std::uint32_t v) const {
    std::uint64_t settled = 0;
    for (std::uint32_t w = 0; w < r; ++w) {
      settled += std::max({dest_mode(w, v), src_mode(w, v), std::uint64_t{n}});
    }
    const std::uint64_t undecided = r - v;
    return settled + undecided * std::max<std::uint64_t>(n, r - 1);
  }
};

}  // namespace

std::uint64_t root_capacity_exact(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  NBCLOS_REQUIRE(r <= 10, "mode search capped at r = 10");
  ModeSearch search{n, r, std::vector<std::uint32_t>(r, 0),
                    std::vector<std::uint32_t>(r, 0)};
  return search.best_total();
}

bool root_set_feasible(std::uint32_t n, std::uint32_t r,
                       const std::vector<SDPair>& pairs) {
  // Track per uplink/downlink whether all pairs share a source or share a
  // destination.
  constexpr std::uint32_t kEmpty = UINT32_MAX;
  struct LinkState {
    std::uint32_t src = kEmpty;
    std::uint32_t dst = kEmpty;
    bool src_same = true;
    bool dst_same = true;
  };
  std::vector<LinkState> up(r);
  std::vector<LinkState> down(r);
  const auto note = [](LinkState& state, const SDPair sd) {
    if (state.src == kEmpty) {
      state.src = sd.src.value;
      state.dst = sd.dst.value;
      return true;
    }
    if (state.src != sd.src.value) state.src_same = false;
    if (state.dst != sd.dst.value) state.dst_same = false;
    return state.src_same || state.dst_same;
  };
  for (const auto sd : pairs) {
    const std::uint32_t v = sd.src.value / n;
    const std::uint32_t w = sd.dst.value / n;
    NBCLOS_REQUIRE(v < r && w < r, "leaf id out of range");
    NBCLOS_REQUIRE(v != w, "root capacity concerns cross pairs only");
    if (!note(up[v], sd)) return false;
    if (!note(down[w], sd)) return false;
  }
  return true;
}

namespace {

/// Raw subset search over all r(r-1)n^2 SD pairs, used to validate the
/// mode model.  Two things lift the old 30-pair cap to 60:
///   * incremental per-link states with O(1) include/undo instead of
///     re-running root_set_feasible over the whole chosen set;
///   * a feasibility-aware bound — only remaining pairs *individually*
///     compatible with the current uplink and downlink states can ever
///     join (compatibility is monotone: growing a link's pair set never
///     re-admits a pair), so `chosen + compatible_remaining <= best`
///     prunes — seeded with the always-feasible witness of size r(r-1)
///     as the initial incumbent.
struct BruteForce {
  static constexpr std::uint32_t kEmpty = UINT32_MAX;
  struct LinkState {
    std::uint32_t src = kEmpty;
    std::uint32_t dst = kEmpty;
    std::uint32_t count = 0;
    bool src_same = true;
    bool dst_same = true;
  };

  std::uint32_t n;
  std::uint32_t r;
  std::vector<SDPair> all_pairs;
  std::vector<LinkState> up;
  std::vector<LinkState> down;
  std::uint64_t chosen = 0;
  std::uint64_t best = 0;

  void run() {
    best = std::uint64_t{r} * (r - 1);  // witness incumbent
    recurse(0);
  }

  /// Would adding `sd` keep `state`'s link feasible on its own?
  [[nodiscard]] static bool compatible(const LinkState& state, SDPair sd) {
    if (state.count == 0) return true;
    return (state.src_same && state.src == sd.src.value) ||
           (state.dst_same && state.dst == sd.dst.value);
  }

  static void include(LinkState& state, SDPair sd) {
    if (state.count == 0) {
      state.src = sd.src.value;
      state.dst = sd.dst.value;
    } else {
      if (state.src != sd.src.value) state.src_same = false;
      if (state.dst != sd.dst.value) state.dst_same = false;
    }
    ++state.count;
  }

  void recurse(std::size_t index) {
    best = std::max(best, chosen);
    if (index == all_pairs.size()) return;
    // Feasibility-aware bound: count remaining pairs that could still
    // individually join given the current link states.
    std::uint64_t compatible_remaining = 0;
    for (std::size_t i = index; i < all_pairs.size(); ++i) {
      const auto sd = all_pairs[i];
      if (compatible(up[sd.src.value / n], sd) &&
          compatible(down[sd.dst.value / n], sd)) {
        ++compatible_remaining;
      }
    }
    if (chosen + compatible_remaining <= best) return;

    const auto sd = all_pairs[index];
    auto& up_state = up[sd.src.value / n];
    auto& down_state = down[sd.dst.value / n];
    if (compatible(up_state, sd) && compatible(down_state, sd)) {
      const LinkState saved_up = up_state;
      const LinkState saved_down = down_state;
      include(up_state, sd);
      include(down_state, sd);
      ++chosen;
      recurse(index + 1);
      --chosen;
      up_state = saved_up;
      down_state = saved_down;
    }
    recurse(index + 1);  // exclude
  }
};

}  // namespace

std::uint64_t root_capacity_bruteforce(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  const std::uint64_t pair_count =
      std::uint64_t{r} * (r - 1) * n * n;
  NBCLOS_REQUIRE(pair_count <= 60, "brute force capped at 60 SD pairs");
  BruteForce search{n, r, {}, std::vector<BruteForce::LinkState>(r),
                    std::vector<BruteForce::LinkState>(r), 0, 0};
  for (std::uint32_t s = 0; s < n * r; ++s) {
    for (std::uint32_t d = 0; d < n * r; ++d) {
      if (s / n == d / n) continue;
      search.all_pairs.push_back({LeafId{s}, LeafId{d}});
    }
  }
  search.run();
  return search.best;
}

std::vector<SDPair> root_capacity_witness(std::uint32_t n, std::uint32_t r) {
  NBCLOS_REQUIRE(n >= 1 && r >= 2, "invalid parameters");
  std::vector<SDPair> pairs;
  pairs.reserve(std::size_t{r} * (r - 1));
  for (std::uint32_t v = 0; v < r; ++v) {
    for (std::uint32_t w = 0; w < r; ++w) {
      if (v == w) continue;
      pairs.push_back({LeafId{v * n + 0}, LeafId{w * n + 0}});
    }
  }
  return pairs;
}

}  // namespace nbclos
