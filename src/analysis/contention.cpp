#include "nbclos/analysis/contention.hpp"

#include <algorithm>

#include "nbclos/obs/trace.hpp"

namespace nbclos {

void LinkLoadMap::add_path(const FtreePath& path) {
  LinkId links[FoldedClos::kMaxPathLinks];
  const auto count = ftree_->links_into(path, links);
  for (std::uint32_t i = 0; i < count; ++i) bump(links[i]);
}

void LinkLoadMap::add_paths(const std::vector<FtreePath>& paths) {
  for (const auto& path : paths) add_path(path);
}

void LinkLoadMap::remove_path(const FtreePath& path) {
  LinkId links[FoldedClos::kMaxPathLinks];
  const auto count = ftree_->links_into(path, links);
  for (std::uint32_t i = 0; i < count; ++i) drop(links[i]);
}

void LinkLoadMap::clear() {
  std::fill(load_.begin(), load_.end(), 0U);
  colliding_pairs_ = 0;
  contended_links_ = 0;
}

std::uint32_t LinkLoadMap::max_load() const {
  std::uint32_t max_load = 0;
  for (const auto l : load_) max_load = std::max(max_load, l);
  return max_load;
}

bool has_contention(const FoldedClos& ftree,
                    const std::vector<FtreePath>& paths) {
  LinkLoadMap map(ftree);
  map.add_paths(paths);
  return !map.contention_free();
}

namespace {

/// Per-link source/destination tracker used by the audits.  We only need
/// to distinguish "zero", "exactly one value", and "two or more", so two
/// sentinel-coded words per link suffice — the full-network audit touches
/// r(r-1)n^2 * 4 link visits and must stay cache-friendly.
class SourceDestTracker {
 public:
  explicit SourceDestTracker(std::uint32_t link_count)
      : src_(link_count, kEmpty), dst_(link_count, kEmpty),
        src_many_(link_count, 0), dst_many_(link_count, 0) {}

  void visit(LinkId link, SDPair sd) {
    note(src_, src_many_, link.value, sd.src.value);
    note(dst_, dst_many_, link.value, sd.dst.value);
  }

  /// Links where both the source set and destination set have >= 2
  /// members — Lemma 1 violations.
  [[nodiscard]] std::vector<LinkId> violating_links() const {
    std::vector<LinkId> out;
    for (std::uint32_t l = 0; l < src_.size(); ++l) {
      if (src_many_[l] && dst_many_[l]) out.push_back(LinkId{l});
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kEmpty = UINT32_MAX;

  static void note(std::vector<std::uint32_t>& first,
                   std::vector<std::uint8_t>& many, std::uint32_t link,
                   std::uint32_t value) {
    if (first[link] == kEmpty) {
      first[link] = value;
    } else if (first[link] != value) {
      many[link] = 1;
    }
  }

  std::vector<std::uint32_t> src_;
  std::vector<std::uint32_t> dst_;
  std::vector<std::uint8_t> src_many_;
  std::vector<std::uint8_t> dst_many_;
};

/// Exact per-link distinct source/destination sets, materialized only for
/// the (typically few) violating links found by the first pass, so the
/// audit's fast path stays two sentinel words per link.
class DistinctCounter {
 public:
  DistinctCounter(std::uint32_t link_count, const std::vector<LinkId>& links)
      : slot_(link_count, kNone), sources_(links.size()), dests_(links.size()) {
    for (std::uint32_t i = 0; i < links.size(); ++i) {
      slot_[links[i].value] = i;
    }
  }

  void visit(LinkId link, SDPair sd) {
    const auto slot = slot_[link.value];
    if (slot == kNone) return;
    insert(sources_[slot], sd.src.value);
    insert(dests_[slot], sd.dst.value);
  }

  [[nodiscard]] std::vector<LinkAuditViolation> violations(
      const std::vector<LinkId>& links) const {
    std::vector<LinkAuditViolation> out;
    out.reserve(links.size());
    for (std::uint32_t i = 0; i < links.size(); ++i) {
      out.push_back(LinkAuditViolation{
          links[i], static_cast<std::uint32_t>(sources_[i].size()),
          static_cast<std::uint32_t>(dests_[i].size())});
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kNone = UINT32_MAX;

  static void insert(std::vector<std::uint32_t>& values, std::uint32_t value) {
    if (std::find(values.begin(), values.end(), value) == values.end()) {
      values.push_back(value);
    }
  }

  std::vector<std::uint32_t> slot_;
  std::vector<std::vector<std::uint32_t>> sources_;
  std::vector<std::vector<std::uint32_t>> dests_;
};

/// Run both audit passes over an SD-pair/link enumerator.  `for_each`
/// must invoke its callback once per (sd, link) visit and be repeatable.
template <typename ForEachVisit>
std::vector<LinkAuditViolation> audit_visits(std::uint32_t link_count,
                                             const ForEachVisit& for_each) {
  SourceDestTracker tracker(link_count);
  for_each([&tracker](LinkId link, SDPair sd) { tracker.visit(link, sd); });
  const auto links = tracker.violating_links();
  if (links.empty()) return {};
  DistinctCounter counter(link_count, links);
  for_each([&counter](LinkId link, SDPair sd) { counter.visit(link, sd); });
  return counter.violations(links);
}

}  // namespace

std::vector<LinkAuditViolation> lemma1_audit(const SinglePathRouting& routing) {
  const auto& ft = routing.ftree();
  obs::ScopedSpan span("analysis.lemma1_audit", "verify");
  span.arg("leafs", static_cast<double>(ft.leaf_count()));
  return audit_visits(ft.link_count(), [&](const auto& visit) {
    LinkId links[FoldedClos::kMaxPathLinks];
    for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
      for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
        if (s == d) continue;
        const SDPair sd{LeafId{s}, LeafId{d}};
        const auto count = ft.links_into(routing.route(sd), links);
        for (std::uint32_t i = 0; i < count; ++i) visit(links[i], sd);
      }
    }
  });
}

std::vector<LinkAuditViolation> lemma1_audit_footprints(
    const FoldedClos& ftree,
    const std::function<std::vector<LinkId>(SDPair)>& footprint) {
  return audit_visits(ftree.link_count(), [&](const auto& visit) {
    for (std::uint32_t s = 0; s < ftree.leaf_count(); ++s) {
      for (std::uint32_t d = 0; d < ftree.leaf_count(); ++d) {
        if (s == d) continue;
        const SDPair sd{LeafId{s}, LeafId{d}};
        for (const auto link : footprint(sd)) visit(link, sd);
      }
    }
  });
}

}  // namespace nbclos
