#include "nbclos/analysis/contention.hpp"

#include <algorithm>

namespace nbclos {

void LinkLoadMap::add_path(const FtreePath& path) {
  for (const auto link : ftree_->links_of(path)) {
    ++load_[link.value];
  }
}

void LinkLoadMap::add_paths(const std::vector<FtreePath>& paths) {
  for (const auto& path : paths) add_path(path);
}

std::uint32_t LinkLoadMap::contended_links() const {
  std::uint32_t count = 0;
  for (const auto l : load_) {
    if (l >= 2) ++count;
  }
  return count;
}

std::uint64_t LinkLoadMap::colliding_pairs() const {
  std::uint64_t pairs = 0;
  for (const auto l : load_) {
    pairs += std::uint64_t{l} * (l - 1) / 2;
  }
  return pairs;
}

std::uint32_t LinkLoadMap::max_load() const {
  std::uint32_t max_load = 0;
  for (const auto l : load_) max_load = std::max(max_load, l);
  return max_load;
}

bool has_contention(const FoldedClos& ftree,
                    const std::vector<FtreePath>& paths) {
  LinkLoadMap map(ftree);
  map.add_paths(paths);
  return !map.contention_free();
}

namespace {

/// Per-link source/destination tracker used by the audits.  We only need
/// to distinguish "zero", "exactly one value", and "two or more", so two
/// sentinel-coded words per link suffice — the full-network audit touches
/// r(r-1)n^2 * 4 link visits and must stay cache-friendly.
class SourceDestTracker {
 public:
  explicit SourceDestTracker(std::uint32_t link_count)
      : src_(link_count, kEmpty), dst_(link_count, kEmpty),
        src_many_(link_count, 0), dst_many_(link_count, 0) {}

  void visit(LinkId link, SDPair sd) {
    note(src_, src_many_, link.value, sd.src.value);
    note(dst_, dst_many_, link.value, sd.dst.value);
  }

  /// Links where both the source set and destination set have >= 2
  /// members — Lemma 1 violations.
  [[nodiscard]] std::vector<LinkAuditViolation> violations() const {
    std::vector<LinkAuditViolation> out;
    for (std::uint32_t l = 0; l < src_.size(); ++l) {
      if (src_many_[l] && dst_many_[l]) {
        out.push_back(LinkAuditViolation{LinkId{l}, 2, 2});
      }
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kEmpty = UINT32_MAX;

  static void note(std::vector<std::uint32_t>& first,
                   std::vector<std::uint8_t>& many, std::uint32_t link,
                   std::uint32_t value) {
    if (first[link] == kEmpty) {
      first[link] = value;
    } else if (first[link] != value) {
      many[link] = 1;
    }
  }

  std::vector<std::uint32_t> src_;
  std::vector<std::uint32_t> dst_;
  std::vector<std::uint8_t> src_many_;
  std::vector<std::uint8_t> dst_many_;
};

}  // namespace

std::vector<LinkAuditViolation> lemma1_audit(const SinglePathRouting& routing) {
  const auto& ft = routing.ftree();
  SourceDestTracker tracker(ft.link_count());
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      if (s == d) continue;
      const SDPair sd{LeafId{s}, LeafId{d}};
      for (const auto link : ft.links_of(routing.route(sd))) {
        tracker.visit(link, sd);
      }
    }
  }
  return tracker.violations();
}

std::vector<LinkAuditViolation> lemma1_audit_footprints(
    const FoldedClos& ftree,
    const std::function<std::vector<LinkId>(SDPair)>& footprint) {
  SourceDestTracker tracker(ftree.link_count());
  for (std::uint32_t s = 0; s < ftree.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ftree.leaf_count(); ++d) {
      if (s == d) continue;
      const SDPair sd{LeafId{s}, LeafId{d}};
      for (const auto link : footprint(sd)) {
        tracker.visit(link, sd);
      }
    }
  }
  return tracker.violations();
}

}  // namespace nbclos
