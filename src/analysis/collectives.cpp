#include "nbclos/analysis/collectives.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos {

std::vector<Permutation> all_to_all_phases(std::uint32_t leaf_count) {
  NBCLOS_REQUIRE(leaf_count >= 2, "need at least two endpoints");
  std::vector<Permutation> phases;
  phases.reserve(leaf_count - 1);
  for (std::uint32_t offset = 1; offset < leaf_count; ++offset) {
    phases.push_back(shift_permutation(leaf_count, offset));
  }
  return phases;
}

std::vector<Permutation> ring_exchange_phases(std::uint32_t leaf_count) {
  NBCLOS_REQUIRE(leaf_count >= 3, "ring needs at least three endpoints");
  return {shift_permutation(leaf_count, 1),
          shift_permutation(leaf_count, leaf_count - 1)};
}

}  // namespace nbclos
