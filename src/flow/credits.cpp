#include "nbclos/flow/credits.hpp"

namespace nbclos::flow {

CreditLedger::CreditLedger(std::uint32_t switch_buffers,
                           std::uint32_t capacity, std::uint32_t delay)
    : capacity_(capacity), delay_(delay),
      credits_(switch_buffers, capacity), delay_line_(std::size_t{delay} + 1) {
  NBCLOS_REQUIRE(capacity >= 1, "credit capacity must be >= 1");
  // A zero-delay return would land mid-transmission-phase and make the
  // outcome depend on channel visit order; the delay line also needs
  // delay + 1 > delay buckets so a bucket drains before it refills.
  NBCLOS_REQUIRE(delay >= 1, "credit return delay must be >= 1 cycle");
}

void CreditLedger::advance(std::uint64_t now) {
  auto& due = delay_line_[now % delay_line_.size()];
  for (const auto b : due) {
    NBCLOS_ASSERT(credits_[b] < capacity_);
    ++credits_[b];
  }
  due.clear();
}

std::uint64_t CreditLedger::pending_returns(std::uint32_t b) const {
  std::uint64_t pending = 0;
  for (const auto& bucket : delay_line_) {
    for (const auto id : bucket) {
      if (id == b) ++pending;
    }
  }
  return pending;
}

OnOffSignal::OnOffSignal(std::uint32_t switch_buffers,
                         std::uint32_t off_threshold)
    : threshold_(off_threshold), off_(switch_buffers, 0),
      in_dirty_(switch_buffers, 0) {
  NBCLOS_REQUIRE(off_threshold >= 1,
                 "on/off threshold must leave at least one sendable slot "
                 "(buffer too shallow for this switching mode)");
}

void OnOffSignal::latch(const FlitBufferPool& pool) {
  for (const auto b : dirty_) {
    off_[b] = pool.size(b) >= threshold_ ? 1 : 0;
    in_dirty_[b] = 0;
  }
  dirty_.clear();
}

}  // namespace nbclos::flow
