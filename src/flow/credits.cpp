#include "nbclos/flow/credits.hpp"

namespace nbclos::flow {

CreditLedger::CreditLedger(FlitBufferPool& pool, std::uint32_t delay)
    : pool_(&pool), delay_(delay), delay_line_(std::size_t{delay} + 1) {
  NBCLOS_REQUIRE(pool.capacity() >= 1, "credit capacity must be >= 1");
  // A zero-delay return would land mid-transmission-phase and make the
  // outcome depend on channel visit order; the delay line also needs
  // delay + 1 > delay buckets so a bucket drains before it refills.
  NBCLOS_REQUIRE(delay >= 1, "credit return delay must be >= 1 cycle");
}

void CreditLedger::advance(std::uint64_t now) {
  auto& due = delay_line_[now % delay_line_.size()];
  for (const auto b : due) {
    pool_->apply_credit_return(b);
  }
  due.clear();
}

OnOffSignal::OnOffSignal(FlitBufferPool& pool, std::uint32_t off_threshold)
    : pool_(&pool), threshold_(off_threshold) {
  NBCLOS_REQUIRE(off_threshold >= 1,
                 "on/off threshold must leave at least one sendable slot "
                 "(buffer too shallow for this switching mode)");
}

void OnOffSignal::latch() {
  for (const auto b : dirty_) {
    pool_->latch_off_bit(b, threshold_);
  }
  dirty_.clear();
}

}  // namespace nbclos::flow
