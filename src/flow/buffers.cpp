#include "nbclos/flow/buffers.hpp"

#include <bit>

namespace nbclos::flow {

FlitBufferPool::FlitBufferPool(std::uint32_t switch_buffers,
                               std::uint32_t nic_buffers,
                               std::uint32_t capacity_flits)
    : switch_count_(switch_buffers), capacity_(capacity_flits),
      slice_(std::bit_ceil(capacity_flits)), slice_mask_(slice_ - 1),
      slot_of_(FlatStore<std::uint32_t>::from_env()),
      slots_(FlatStore<BufferSlot>::from_env()),
      ring_slab_(FlatStore<FlitRef>::from_env()),
      nic_rings_(nic_buffers) {
  NBCLOS_REQUIRE(capacity_flits >= 1, "buffers need capacity >= 1 flit");
  slot_of_.resize(std::size_t{switch_buffers} + nic_buffers, kNoSlot);
}

std::size_t FlitBufferPool::bytes() const noexcept {
  std::size_t total = slot_of_.bytes() + slots_.bytes() + ring_slab_.bytes() +
                      free_slots_.capacity() * sizeof(std::uint32_t) +
                      nic_rings_.capacity() * sizeof(nic_rings_[0]);
  for (const auto& ring : nic_rings_) {
    total += ring.capacity() * sizeof(FlitRef);
  }
  return total;
}

}  // namespace nbclos::flow
