#include "nbclos/flow/buffers.hpp"

#include <bit>

namespace nbclos::flow {

FlitBufferPool::FlitBufferPool(std::uint32_t switch_buffers,
                               std::uint32_t nic_buffers,
                               std::uint32_t capacity_flits)
    : switch_count_(switch_buffers), capacity_(capacity_flits),
      slice_(std::bit_ceil(capacity_flits)), slice_mask_(slice_ - 1),
      switch_pool_(std::size_t{switch_buffers} * slice_),
      nic_rings_(nic_buffers),
      head_(std::size_t{switch_buffers} + nic_buffers, 0),
      size_(std::size_t{switch_buffers} + nic_buffers, 0) {
  NBCLOS_REQUIRE(capacity_flits >= 1, "buffers need capacity >= 1 flit");
}

std::size_t FlitBufferPool::bytes() const noexcept {
  std::size_t total = switch_pool_.capacity() * sizeof(FlitRef) +
                      nic_rings_.capacity() * sizeof(nic_rings_[0]) +
                      (head_.capacity() + size_.capacity()) *
                          sizeof(std::uint32_t);
  for (const auto& ring : nic_rings_) {
    total += ring.capacity() * sizeof(FlitRef);
  }
  return total;
}

}  // namespace nbclos::flow
