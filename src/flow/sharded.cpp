#include "nbclos/flow/sharded.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <optional>
#include <string>
#include <thread>

#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/sim/injection_rng.hpp"

namespace nbclos::flow {

namespace {
constexpr std::uint32_t kNone = UINT32_MAX;
constexpr std::uint32_t kEject = UINT32_MAX;  ///< wire target
/// Claim placeholder between the executor's allocation (phase B) and the
/// head flit's arrival (phase A next cycle), when the owner-local packet
/// slot becomes known.  Anything != kNone blocks other claimants —
/// exactly the window serial FlowSim covers with the upstream slot id.
constexpr std::uint32_t kClaimPending = UINT32_MAX - 1;
constexpr std::uint64_t kNotBlocked = UINT64_MAX;
constexpr std::uint8_t kNoWinner = 0xFF;
}  // namespace

/// All mutable per-shard state — one arena per worker, allocated on the
/// worker's own thread (first touch) and never touched by another until
/// the merge after join.
struct ShardedFlowSim::Shard {
  /// A flit in flight on a channel this shard executes, landing next
  /// cycle in one of this shard's own buffers (or ejecting at one of its
  /// terminals).  The packet rides inline: flit storage never crosses
  /// the cut, so slot ids stay pool-local.
  struct Wire {
    std::uint32_t target = 0;  ///< global downstream buffer id, or kEject
    std::uint32_t flit_index = 0;
    sim::Packet packet;
  };

  std::uint32_t index = 0;
  std::uint32_t term_lo = 0;  ///< owned terminal range [term_lo, term_hi)
  std::uint32_t term_hi = 0;
  std::uint32_t local_switch_buffers = 0;
  std::uint32_t local_nic_buffers = 0;

  // Arena (owner role): flit storage, packets, backpressure state for
  // every buffer this shard owns, locally indexed.  Per-buffer side
  // state (out_alloc -> GLOBAL nb, claim, blocked_since) lives in the
  // pool's sparse slots, so resident bytes track the live flit front.
  std::unique_ptr<FlitBufferPool> pool;
  PacketPool packets;
  std::unique_ptr<CreditLedger> ledger;
  std::unique_ptr<OnOffSignal> onoff;

  // Per owned channel (plan.channel_local index), except `active` which
  // keeps GLOBAL channel ids so its sorted sweep order equals serial's.
  std::vector<std::uint32_t> next_vc;
  std::vector<std::uint32_t> channel_flits;
  std::vector<std::uint8_t> in_active;
  std::vector<std::uint32_t> active;
  std::vector<std::uint32_t> channel_of_local_buf;  ///< local buf -> channel

  // Executor role: wires created in phase B, landed in phase A next
  // cycle (executor(c) owns the landing buffer, so this stays local).
  std::vector<Wire> wires;

  std::optional<fault::DegradedView> degraded;
  std::size_t next_fault = 0;

  // Phase scratch (messages between a shard's own roles skip the boxes).
  std::vector<FlitProposal> local_props;
  std::vector<FlitProposal> merged_props;
  std::vector<TransmitGrant> local_grants;
  std::vector<TransmitGrant> merged_grants;
  std::vector<CreditReturn> local_credits;

  // Statistics, merged exactly after the run (see merge_results for the
  // replay arguments that make each merge bit-identical to serial).
  std::uint64_t injected = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered_measured_flits = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_count = 0;
  QuantileHistogram latency_hist;
  QuantileHistogram stall_hist;
  std::vector<std::uint64_t> delivered_per_source;  ///< all T terminals
  std::vector<std::uint64_t> flow_sequence;         ///< owned range only
  std::uint64_t next_packet_id = 0;
  std::uint64_t credit_stall_cycles = 0;
  std::uint64_t vc_stall_cycles = 0;
  std::uint64_t stall_duration_sum = 0;
  std::uint64_t stall_episode_count = 0;
  std::uint64_t blocked_heads = 0;  ///< owned FIFOs inside a stall episode
  std::vector<std::uint32_t> peak_per_vc;         ///< per VC index
  std::vector<std::uint64_t> depth_sum_by_cycle;  ///< end-of-cycle total
  std::vector<std::uint32_t> acq_by_cycle;  ///< packets entering network
  std::vector<std::uint32_t> rel_by_cycle;  ///< tail ejections
  std::int64_t flits_in_system = 0;  ///< negative when ejecting for others
  std::uint64_t flits_moved_epoch = 0;
  std::uint32_t executed_channels = 0;   ///< channels with executor == index
  std::vector<std::uint64_t> link_busy;  ///< per EXECUTED channel (exec_index_)
  std::vector<std::uint64_t> audit_in_flight;  ///< conservation scratch, slots
  std::uint64_t route_lookups = 0;
  std::uint64_t cross_flits = 0;
  std::uint64_t cross_credits = 0;
  std::uint64_t mailbox_peak = 0;
  std::uint64_t cycles_run = 0;
  bool deadlocked = false;
  std::uint64_t deadlock_cycle = 0;
  std::uint64_t stuck_total = 0;
  std::vector<std::uint32_t> stuck_buffers;  ///< 8 smallest occupied, global
  std::uint32_t numa_node = 0;
  std::uint8_t pinned = 0;

  explicit Shard(std::uint64_t hist_max)
      : latency_hist(hist_max), stall_hist(hist_max) {}
};

ShardedFlowSim::ShardedFlowSim(
    std::shared_ptr<const routing::ChannelRouteCache> routes,
    const sim::TrafficPattern& traffic, FlowConfig config,
    std::uint32_t shards, const fault::DegradedView* degraded,
    std::vector<fault::FaultEvent> fault_events)
    : ShardedFlowSim(std::static_pointer_cast<const RouteSource>(
                         std::make_shared<const CacheRouteSource>(
                             std::move(routes))),
                     traffic, config, shards, degraded,
                     std::move(fault_events)) {}

ShardedFlowSim::ShardedFlowSim(
    std::shared_ptr<const RouteSource> routes,
    const sim::TrafficPattern& traffic, FlowConfig config,
    std::uint32_t shards, const fault::DegradedView* degraded,
    std::vector<fault::FaultEvent> fault_events)
    : routes_(std::move(routes)),
      net_(&routes_->network()),
      traffic_(&traffic),
      config_(config),
      fault_events_(std::move(fault_events)),
      degraded_(degraded) {
  NBCLOS_REQUIRE(config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
                 "injection rate must be in [0, 1] flits/cycle");
  NBCLOS_REQUIRE(config.packet_flits >= 1, "packets need at least one flit");
  NBCLOS_REQUIRE(config.vcs >= 1 && config.vcs <= 32,
                 "sharded engine supports 1..32 virtual channels (stall "
                 "masks are 32 bits wide)");
  if (config.switching == Switching::kVirtualCutThrough) {
    NBCLOS_REQUIRE(config.buffer_flits >= config.packet_flits,
                   "virtual cut-through buffers a whole packet per FIFO: "
                   "buffer_flits must be >= packet_flits");
  }
  if (config.backpressure == Backpressure::kOnOff) {
    NBCLOS_REQUIRE(
        config.buffer_flits >= config.head_reservation_flits() + 1,
        "on/off signaling needs one slot of slack beyond the head "
        "reservation (see onoff_off_threshold)");
  }
  NBCLOS_REQUIRE(degraded == nullptr || &degraded->network() == net_,
                 "degraded view was built over a different network");
  NBCLOS_REQUIRE(fault_events_.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  std::stable_sort(fault_events_.begin(), fault_events_.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  head_reservation_ = config.head_reservation_flits();
  packet_rate_ =
      config.injection_rate / static_cast<double>(config.packet_flits);
  const auto terminal_vertices = net_->terminals();
  terminal_count_ = static_cast<std::uint32_t>(terminal_vertices.size());
  NBCLOS_REQUIRE(traffic.terminal_count() == terminal_count_,
                 "traffic pattern size does not match network");
  for (std::uint32_t t = 0; t < terminal_count_; ++t) {
    NBCLOS_REQUIRE(terminal_vertices[t] == t,
                   "terminals must be vertices [0, T) (library builders "
                   "guarantee this)");
  }
  config_.counter_injection = true;  // the sharded engine's only mode

  plan_ = sim::ShardPlan::build(*net_, shards);
  const std::uint32_t shard_count = plan_.shard_count;
  const std::uint32_t channels = net_->channel_count();

  // Global buffer id assignment — serial FlowSim's, verbatim: switch
  // channels take `vcs` consecutive ids in channel order, NIC channels
  // one id each after all switch buffers.  Keeping the global id space
  // identical makes claims, credit messages, and deadlock diagnostics
  // field-for-field comparable with the serial engine.
  buf_base_.assign(channels, 0);
  is_nic_.assign(channels, 0);
  channel_dst_.assign(channels, 0);
  dst_is_terminal_.assign(channels, 0);
  channel_executor_.assign(channels, 0);
  exec_index_.assign(channels, 0);
  std::vector<std::uint32_t> exec_counts(shard_count, 0);
  std::uint32_t switch_idx = 0;
  std::uint32_t nic_count = 0;
  for (std::uint32_t c = 0; c < channels; ++c) {
    channel_dst_[c] = net_->channel_dst(c);
    dst_is_terminal_[c] =
        net_->vertex(channel_dst_[c]).kind == VertexKind::kTerminal;
    channel_executor_[c] =
        static_cast<std::uint8_t>(plan_.shard_of_vertex(channel_dst_[c]));
    exec_index_[c] = exec_counts[channel_executor_[c]]++;
    if (net_->vertex(net_->channel_src(c)).kind == VertexKind::kTerminal) {
      is_nic_[c] = 1;
      ++nic_count;
    } else {
      buf_base_[c] = switch_idx * config.vcs;
      ++switch_idx;
    }
  }
  switch_channel_count_ = switch_idx;
  switch_buffer_count_ = switch_idx * config.vcs;
  std::uint32_t nic_idx = 0;
  for (std::uint32_t c = 0; c < channels; ++c) {
    if (is_nic_[c]) buf_base_[c] = switch_buffer_count_ + nic_idx++;
  }

  // Local buffer numbering per shard: owned switch buffers first (`vcs`
  // consecutive per channel, channels ascending — the shard_channels
  // order), then owned NIC buffers.  Read-only after this loop.
  buf_local_of_global_.assign(switch_buffer_count_ + nic_count, 0);
  shards_.reserve(shard_count);
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>(total);
    shard->index = s;
    shard->term_lo = std::min(plan_.vertex_begin[s], terminal_count_);
    shard->term_hi = std::min(plan_.vertex_begin[s + 1], terminal_count_);
    std::uint32_t local_switch = 0;
    std::uint32_t local_nic = 0;
    for (const auto c : plan_.shard_channels[s]) {
      if (is_nic_[c]) continue;
      for (std::uint32_t v = 0; v < config_.vcs; ++v) {
        buf_local_of_global_[buf_base_[c] + v] = local_switch++;
      }
    }
    for (const auto c : plan_.shard_channels[s]) {
      if (!is_nic_[c]) continue;
      buf_local_of_global_[buf_base_[c]] = local_switch + local_nic++;
    }
    shard->local_switch_buffers = local_switch;
    shard->local_nic_buffers = local_nic;
    shard->executed_channels = exec_counts[s];
    shards_.push_back(std::move(shard));
  }

  proposal_box_ = sim::MailboxGrid<FlitProposal>(shard_count);
  grant_box_ = sim::MailboxGrid<TransmitGrant>(shard_count);
  credit_box_ = sim::MailboxGrid<CreditReturn>(shard_count);
  epoch_stats_.assign(shard_count, EpochStat{});
  sync_ = std::make_unique<sim::ShardSync>(
      static_cast<std::ptrdiff_t>(shard_count));
  numa_ = sim::NumaTopology::detect();
  if constexpr (obs::kEnabled) arm_recorder();
}

void ShardedFlowSim::arm_recorder() {
  if (!config_.record_timeseries) return;
  obs::FlightRecorder::Config rec;
  rec.cadence = config_.record_cadence;
  rec.ring_capacity = config_.record_ring_capacity;
  rec.shards = plan_.shard_count;
  recorder_.configure(rec);
  // Same names, cadence, and capacity as the serial FlowSim recorder, so
  // after the per-shard sum these kInvariant series are bit-identical to
  // a serial recording of the same run at any shard count.
  using obs::SeriesAgg;
  using obs::SeriesScope;
  rec_in_system_ = recorder_.series("flow.flits.in_system", SeriesAgg::kSum);
  rec_buffer_occupancy_ =
      recorder_.series("flow.buffer.occupancy", SeriesAgg::kSum);
  rec_credit_stalls_ =
      recorder_.series("flow.stall.credit_cycles", SeriesAgg::kSum);
  rec_vc_stalls_ = recorder_.series("flow.stall.vc_cycles", SeriesAgg::kSum);
  rec_blocked_heads_ = recorder_.series("flow.blocked.heads", SeriesAgg::kSum);
  rec_injected_ = recorder_.series("flow.packets.injected", SeriesAgg::kSum);
  rec_delivered_ = recorder_.series("flow.packets.delivered", SeriesAgg::kSum);
  // Mailbox pressure exists only under a shard cut (zero messages cross
  // at one shard), so these are excluded from the invariance contract.
  rec_mailbox_flits_ = recorder_.series(
      "flow.mailbox.cross_flits", SeriesAgg::kSum, SeriesScope::kShardTopology);
  rec_mailbox_credits_ =
      recorder_.series("flow.mailbox.cross_credits", SeriesAgg::kSum,
                       SeriesScope::kShardTopology);
  rec_mailbox_peak_ = recorder_.series(
      "flow.mailbox.peak", SeriesAgg::kMax, SeriesScope::kShardTopology);
}

void ShardedFlowSim::sample_recorder(Shard& sh, std::uint64_t now) {
  const std::uint32_t slot = sh.index;
  // Per-shard in-system counts partition additively but can be negative
  // (a shard that only ejects foreign packets), which is why SeriesPoint
  // values are signed.
  recorder_.record(rec_in_system_, slot, now, sh.flits_in_system);
  recorder_.record(rec_buffer_occupancy_, slot, now,
                   static_cast<std::int64_t>(sh.pool->switch_flits_total()));
  recorder_.record(rec_credit_stalls_, slot, now,
                   static_cast<std::int64_t>(sh.credit_stall_cycles));
  recorder_.record(rec_vc_stalls_, slot, now,
                   static_cast<std::int64_t>(sh.vc_stall_cycles));
  recorder_.record(rec_blocked_heads_, slot, now,
                   static_cast<std::int64_t>(sh.blocked_heads));
  recorder_.record(rec_injected_, slot, now,
                   static_cast<std::int64_t>(sh.injected));
  recorder_.record(rec_delivered_, slot, now,
                   static_cast<std::int64_t>(sh.delivered_packets));
  recorder_.record(rec_mailbox_flits_, slot, now,
                   static_cast<std::int64_t>(sh.cross_flits));
  recorder_.record(rec_mailbox_credits_, slot, now,
                   static_cast<std::int64_t>(sh.cross_credits));
  recorder_.record(rec_mailbox_peak_, slot, now,
                   static_cast<std::int64_t>(sh.mailbox_peak));
}

ShardedFlowSim::~ShardedFlowSim() = default;

void ShardedFlowSim::init_shard_arena(std::uint32_t s) {
  Shard& sh = *shards_[s];
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  sh.pool = std::make_unique<FlitBufferPool>(
      sh.local_switch_buffers, sh.local_nic_buffers, config_.buffer_flits);
  if (config_.backpressure == Backpressure::kCredit) {
    sh.ledger =
        std::make_unique<CreditLedger>(*sh.pool, config_.credit_delay);
  } else {
    sh.onoff =
        std::make_unique<OnOffSignal>(*sh.pool, config_.onoff_off_threshold());
  }
  const std::uint32_t local_buffers =
      sh.local_switch_buffers + sh.local_nic_buffers;
  sh.channel_of_local_buf.assign(local_buffers, 0);
  for (const auto c : plan_.shard_channels[s]) {
    const std::uint32_t vcs = is_nic_[c] ? 1u : config_.vcs;
    for (std::uint32_t v = 0; v < vcs; ++v) {
      sh.channel_of_local_buf[buf_local_of_global_[buf_base_[c] + v]] = c;
    }
  }
  const auto count = static_cast<std::uint32_t>(plan_.shard_channels[s].size());
  sh.next_vc.assign(count, 0);
  sh.channel_flits.assign(count, 0);
  sh.in_active.assign(count, 0);
  sh.active.reserve(count);
  sh.peak_per_vc.assign(config_.vcs, 0);
  sh.delivered_per_source.assign(terminal_count_, 0);
  sh.flow_sequence.assign(sh.term_hi - sh.term_lo, 0);
  sh.depth_sum_by_cycle.assign(total, 0);
  sh.acq_by_cycle.assign(total, 0);
  sh.rel_by_cycle.assign(total, 0);
  sh.link_busy.assign(sh.executed_channels, 0);
  if (degraded_ != nullptr) sh.degraded.emplace(*degraded_);
}

bool ShardedFlowSim::backpressure_ok(const Shard& sh, std::uint32_t local_b,
                                     std::uint32_t reservation) const {
  if (sh.ledger != nullptr) return sh.ledger->credits(local_b) >= reservation;
  return !sh.onoff->off(local_b);
}

void ShardedFlowSim::note_blocked(Shard& sh, std::uint32_t global_b,
                                  bool credit_block, std::uint64_t now) {
  if (credit_block) {
    ++sh.credit_stall_cycles;
  } else {
    ++sh.vc_stall_cycles;
  }
  const std::uint32_t lb = buf_local_of_global_[global_b];
  if (sh.pool->blocked_since(lb) == kNotBlocked) {
    sh.pool->set_blocked_since(lb, now);
    ++sh.blocked_heads;
  }
}

void ShardedFlowSim::note_unblocked(Shard& sh, std::uint32_t global_b,
                                    std::uint64_t now) {
  const std::uint32_t lb = buf_local_of_global_[global_b];
  const std::uint64_t since = sh.pool->blocked_since(lb);
  if (since == kNotBlocked) return;
  const std::uint64_t duration = now - since;
  sh.pool->clear_blocked_since(lb);
  --sh.blocked_heads;
  sh.stall_duration_sum += duration;
  ++sh.stall_episode_count;
  sh.stall_hist.add(duration);
}

void ShardedFlowSim::eject_flit(Shard& sh, const sim::Packet& packet,
                                std::uint32_t flit_index, std::uint64_t now,
                                bool measuring) {
  --sh.flits_in_system;
  const bool tail = flit_index + 1 == packet.size_flits;
  if (tail) ++sh.delivered_packets;
  if (measuring) {
    ++sh.delivered_measured_flits;
    ++sh.delivered_per_source[packet.src_terminal];
    if (tail && packet.injected_cycle >= config_.warmup_cycles) {
      const std::uint64_t latency = now - packet.injected_cycle;
      sh.latency_sum += latency;
      ++sh.latency_count;
      sh.latency_hist.add(latency);
    }
  }
  if (tail) ++sh.rel_by_cycle[now];
}

void ShardedFlowSim::phase_owner_pre(Shard& sh, std::uint64_t now,
                                     bool measuring) {
  // Faults first: every shard advances its PRIVATE DegradedView copy
  // through the same sorted schedule, so the copies never diverge.
  if (sh.degraded.has_value()) {
    while (sh.next_fault < fault_events_.size() &&
           fault_events_[sh.next_fault].cycle <= now) {
      sh.degraded->apply(fault_events_[sh.next_fault]);
      ++sh.next_fault;
    }
  }
  if (sh.ledger != nullptr) sh.ledger->advance(now);

  // Arrivals: land the wires this shard created in its executor role
  // last cycle.  Every target is a buffer (or terminal) this shard owns,
  // and at most one wire per buffer per cycle (the claim serializes
  // writers), so landing order never affects merged results.
  for (const Shard::Wire& w : sh.wires) {
    if (w.target == kEject) {
      eject_flit(sh, w.packet, w.flit_index, now, measuring);
      continue;
    }
    const std::uint32_t lb = buf_local_of_global_[w.target];
    std::uint32_t slot;
    if (w.flit_index == 0) {
      // Head landed: the packet gets its owner-local slot now, replacing
      // the kClaimPending placeholder set at allocation time.
      slot = sh.packets.acquire(w.packet);
      NBCLOS_ASSERT(sh.pool->claim(lb) == kClaimPending);
      sh.pool->set_claim(lb, slot);
    } else {
      slot = sh.pool->claim(lb);
      NBCLOS_ASSERT(slot != kNone && slot != kClaimPending);
    }
    sh.pool->push(lb, FlitRef{slot, w.flit_index});
    const std::uint32_t oc = sh.channel_of_local_buf[lb];
    const std::uint32_t li = plan_.channel_local[oc];
    ++sh.channel_flits[li];
    if (!sh.in_active[li]) {
      sh.in_active[li] = 1;
      sh.active.push_back(oc);
    }
    if (sh.onoff != nullptr) sh.onoff->mark_dirty(lb);
    const std::uint32_t vc = w.target - buf_base_[oc];
    if (sh.pool->size(lb) > sh.peak_per_vc[vc]) {
      sh.peak_per_vc[vc] = sh.pool->size(lb);
    }
    if (w.flit_index + 1 == w.packet.size_flits) {
      // Tail landed: the VC is whole again and accepts a new claimant.
      NBCLOS_ASSERT(sh.pool->claim(lb) == slot);
      sh.pool->set_claim(lb, kNone);
    }
  }
  sh.wires.clear();

  // Proposals: one per non-empty VC of each active, usable channel, sent
  // to the channel's executor.  Sorted sweep + compaction mirror serial
  // step_transmissions (a drained channel leaves the list; a dead one
  // stays, transmitting nothing).
  std::sort(sh.active.begin(), sh.active.end());
  std::size_t keep = 0;
  const std::size_t active_count = sh.active.size();
  for (std::size_t i = 0; i < active_count; ++i) {
    const std::uint32_t c = sh.active[i];
    const std::uint32_t li = plan_.channel_local[c];
    if (sh.channel_flits[li] == 0) {  // drained since the last sweep
      sh.in_active[li] = 0;
      continue;
    }
    sh.active[keep++] = c;
    if (sh.degraded.has_value() && !sh.degraded->channel_alive(c)) continue;
    const std::uint32_t vc_count = is_nic_[c] ? 1u : config_.vcs;
    const auto start = static_cast<std::uint8_t>(sh.next_vc[li]);
    const std::uint32_t executor = channel_executor_[c];
    for (std::uint32_t vc = 0; vc < vc_count; ++vc) {
      const std::uint32_t lb = buf_local_of_global_[buf_base_[c] + vc];
      if (sh.pool->size(lb) == 0) continue;
      const FlitRef flit = sh.pool->front(lb);
      FlitProposal p;
      p.channel = c;
      p.flit_index = flit.flit_index;
      p.out_alloc = sh.pool->out_alloc(lb);
      p.packet = sh.packets.at(flit.packet_slot);
      p.vc = static_cast<std::uint8_t>(vc);
      p.start_vc = start;
      if (executor == sh.index) {
        sh.local_props.push_back(p);
      } else {
        proposal_box_.box(sh.index, executor).push_back(p);
        ++sh.cross_flits;
      }
    }
  }
  sh.active.resize(keep);
}

std::uint32_t ShardedFlowSim::allocate_downstream(Shard& sh,
                                                  std::uint32_t from_vc,
                                                  const sim::Packet& packet,
                                                  std::uint32_t at_vertex,
                                                  bool* credit_block) {
  ++sh.route_lookups;
  const std::uint32_t nc = routes_->next_channel_from(
      at_vertex, packet.src_terminal, packet.dst_terminal);
  NBCLOS_DEBUG_CHECK(net_->channel_src(nc) == at_vertex,
                     "route cache returned a foreign channel");
  // A dead next channel blocks the head in place (fail-stop: the worm
  // waits, it is never purged) — accounted as a credit stall.
  if (sh.degraded.has_value() && !sh.degraded->channel_alive(nc)) {
    *credit_block = true;
    return kNone;
  }
  // First-free VC scan starting at the packet's current VC.  Channel nc
  // leaves at_vertex = dst(c), so its buffers belong to THIS shard (the
  // executor of c) — claims and credits are read and set locally.
  bool saw_credit_block = false;
  for (std::uint32_t j = 0; j < config_.vcs; ++j) {
    const std::uint32_t nv = (from_vc + j) % config_.vcs;
    const std::uint32_t nb = buf_base_[nc] + nv;
    const std::uint32_t lnb = buf_local_of_global_[nb];
    if (sh.pool->claim(lnb) != kNone) continue;
    if (!backpressure_ok(sh, lnb, head_reservation_)) {
      saw_credit_block = true;
      continue;
    }
    return nb;
  }
  *credit_block = saw_credit_block;
  return kNone;
}

void ShardedFlowSim::phase_execute(Shard& sh, std::uint64_t now) {
  (void)now;
  // Merge this shard's own proposals with the mailboxed ones, then
  // canonicalize: ascending (channel, vc).  Per-executor ascending
  // channel order IS serial order for all cross-channel interaction,
  // because claims and credit consumption only couple channels sharing a
  // downstream vertex — which share this executor.
  sh.merged_props.clear();
  sh.merged_props.swap(sh.local_props);
  proposal_box_.drain_to(
      sh.index, [&](std::uint32_t /*src*/, std::vector<FlitProposal>& box) {
        sh.mailbox_peak = std::max<std::uint64_t>(sh.mailbox_peak, box.size());
        sh.merged_props.insert(sh.merged_props.end(), box.begin(), box.end());
      });
  std::sort(sh.merged_props.begin(), sh.merged_props.end(),
            [](const FlitProposal& a, const FlitProposal& b) {
              return a.channel != b.channel ? a.channel < b.channel
                                           : a.vc < b.vc;
            });

  std::size_t i = 0;
  while (i < sh.merged_props.size()) {
    const std::uint32_t c = sh.merged_props[i].channel;
    std::array<const FlitProposal*, 32> by_vc{};
    const std::uint32_t vc_count = is_nic_[c] ? 1u : config_.vcs;
    std::uint32_t scan_start = sh.merged_props[i].start_vc;
    for (; i < sh.merged_props.size() && sh.merged_props[i].channel == c; ++i) {
      by_vc[sh.merged_props[i].vc] = &sh.merged_props[i];
    }

    // Replay serial try_transmit's VC scan against local state.
    TransmitGrant g;
    g.channel = c;
    g.new_out_alloc = kNone;
    g.winner_vc = kNoWinner;
    for (std::uint32_t k = 0; k < vc_count; ++k) {
      const std::uint32_t vc = (scan_start + k) % vc_count;
      const FlitProposal* e = by_vc[vc];
      if (e == nullptr) continue;  // empty VC: serial skips it too
      std::uint32_t target;
      if (dst_is_terminal_[c]) {
        target = kEject;  // the terminal sink always accepts
      } else if (e->flit_index == 0) {
        NBCLOS_ASSERT(e->out_alloc == kNone);
        bool credit_block = false;
        const std::uint32_t nb = allocate_downstream(
            sh, vc, e->packet, channel_dst_[c], &credit_block);
        if (nb == kNone) {
          if (credit_block) {
            g.credit_block_mask |= 1u << vc;
          } else {
            g.vc_block_mask |= 1u << vc;
          }
          continue;  // this VC stalls; the next may still use the channel
        }
        sh.pool->set_claim(buf_local_of_global_[nb], kClaimPending);
        g.new_out_alloc = nb;
        target = nb;
      } else {
        target = e->out_alloc;
        NBCLOS_ASSERT(target != kNone);
        // Wormhole body flits re-check backpressure every cycle; VCT
        // reserved the whole packet at the head, so bodies stream freely.
        if (config_.switching == Switching::kWormhole &&
            !backpressure_ok(sh, buf_local_of_global_[target], 1)) {
          g.credit_block_mask |= 1u << vc;
          continue;
        }
      }
      if (target != kEject && sh.ledger != nullptr) {
        sh.ledger->consume(buf_local_of_global_[target]);
      }
      sh.wires.push_back(Shard::Wire{target, e->flit_index, e->packet});
      sh.link_busy[exec_index_[c]] += 1;
      ++sh.flits_moved_epoch;
      g.winner_vc = static_cast<std::uint8_t>(vc);
      // The freed slot's credit flows back UPSTREAM — opposite to the
      // flit — to the buffer's owner, through its own mailbox class.
      if (!is_nic_[c]) {
        const CreditReturn r{buf_base_[c] + vc};
        const std::uint32_t owner = plan_.channel_owner[c];
        if (owner == sh.index) {
          sh.local_credits.push_back(r);
        } else {
          credit_box_.box(sh.index, owner).push_back(r);
          ++sh.cross_credits;
        }
      }
      break;
    }

    if (g.winner_vc != kNoWinner || g.credit_block_mask != 0 ||
        g.vc_block_mask != 0) {
      const std::uint32_t owner = plan_.channel_owner[c];
      if (owner == sh.index) {
        sh.local_grants.push_back(g);
      } else {
        grant_box_.box(sh.index, owner).push_back(g);
      }
    }
  }
}

void ShardedFlowSim::apply_grant(Shard& sh, const TransmitGrant& g,
                                 std::uint64_t now) {
  const std::uint32_t c = g.channel;
  const std::uint32_t li = plan_.channel_local[c];
  const std::uint32_t vc_count = is_nic_[c] ? 1u : config_.vcs;
  const std::uint32_t start = sh.next_vc[li];
  // Replay the executor's scan outcome in scan order: stall bookkeeping
  // for the attempted-and-blocked VCs, then the winner's pop.
  for (std::uint32_t k = 0; k < vc_count; ++k) {
    const std::uint32_t vc = (start + k) % vc_count;
    if (vc == g.winner_vc) break;  // masks only cover pre-winner VCs
    const std::uint32_t b = buf_base_[c] + vc;
    if ((g.credit_block_mask >> vc) & 1u) {
      note_blocked(sh, b, true, now);
    } else if ((g.vc_block_mask >> vc) & 1u) {
      note_blocked(sh, b, false, now);
    }
  }
  if (g.winner_vc == kNoWinner) return;
  const std::uint32_t vc = g.winner_vc;
  const std::uint32_t b = buf_base_[c] + vc;
  const std::uint32_t lb = buf_local_of_global_[b];
  const FlitRef flit = sh.pool->pop(lb);
  --sh.channel_flits[li];
  const sim::Packet packet = sh.packets.at(flit.packet_slot);
  // (Credit return / on-off dirty for this pop arrive as CreditReturn
  // messages in phase C — the owner does not shortcut them here.)
  if (g.new_out_alloc != kNone) {
    NBCLOS_ASSERT(flit.flit_index == 0 && sh.pool->out_alloc(lb) == kNone);
    sh.pool->set_out_alloc(lb, g.new_out_alloc);
  }
  if (flit.flit_index + 1 == packet.size_flits) {
    sh.pool->set_out_alloc(lb, kNone);
    // Tail left this hop: the packet's local slot dies with it (FIFO
    // order plus the no-interleave claim guarantee the tail pops last).
    sh.packets.release(flit.packet_slot);
  }
  note_unblocked(sh, b, now);
  // Drained and unblocked: recycle the slot (pending credit returns or
  // a live claim keep it pinned — a skipped release is only memory).
  sh.pool->maybe_release(lb);
  sh.next_vc[li] = (vc + 1) % vc_count;
}

void ShardedFlowSim::phase_owner_post(Shard& sh, std::uint64_t now) {
  // Grants: merge, sort by channel (one grant per channel), apply — the
  // ascending order reproduces serial's sorted transmission sweep as
  // seen by this owner's buffers.
  sh.merged_grants.clear();
  sh.merged_grants.swap(sh.local_grants);
  grant_box_.drain_to(
      sh.index, [&](std::uint32_t /*src*/, std::vector<TransmitGrant>& box) {
        sh.mailbox_peak = std::max<std::uint64_t>(sh.mailbox_peak, box.size());
        sh.merged_grants.insert(sh.merged_grants.end(), box.begin(),
                                box.end());
      });
  std::sort(sh.merged_grants.begin(), sh.merged_grants.end(),
            [](const TransmitGrant& a, const TransmitGrant& b) {
              return a.channel < b.channel;
            });
  for (const TransmitGrant& g : sh.merged_grants) apply_grant(sh, g, now);

  // Returning credits (delay-line scheduling is commutative, so drain
  // order across sources is free).
  const auto apply_credit = [&](const CreditReturn& r) {
    const std::uint32_t lb = buf_local_of_global_[r.buffer];
    if (sh.ledger != nullptr) sh.ledger->schedule_return(lb, now);
    if (sh.onoff != nullptr) sh.onoff->mark_dirty(lb);
  };
  for (const CreditReturn& r : sh.local_credits) apply_credit(r);
  sh.local_credits.clear();
  credit_box_.drain_to(
      sh.index, [&](std::uint32_t /*src*/, std::vector<CreditReturn>& box) {
        sh.mailbox_peak = std::max<std::uint64_t>(sh.mailbox_peak, box.size());
        for (const CreditReturn& r : box) apply_credit(r);
      });

  // Injection over this shard's own terminals: every draw is a pure
  // function of (seed, cycle, terminal), so the partition cannot change
  // the stream.
  for (std::uint32_t t = sh.term_lo; t < sh.term_hi; ++t) {
    SplitMix64 sm(sim::injection_counter_state(config_.seed, now, t));
    if (!sim::injection_bernoulli(sm, packet_rate_)) continue;
    Xoshiro256 dest_rng(sm.next());
    const auto dst = traffic_->destination(t, dest_rng);
    if (!dst.has_value()) continue;
    sim::Packet packet;
    packet.id = sh.next_packet_id++;
    packet.src_terminal = t;
    packet.dst_terminal = *dst;
    packet.size_flits = config_.packet_flits;
    packet.injected_cycle = now;
    packet.flow_sequence = sh.flow_sequence[t - sh.term_lo]++;
    ++sh.route_lookups;
    const std::uint32_t first =
        routes_->next_channel_from(t, packet.src_terminal, packet.dst_terminal);
    NBCLOS_DEBUG_CHECK(is_nic_[first] != 0,
                       "first hop must leave through the source NIC");
    NBCLOS_ASSERT(plan_.channel_owner[first] == sh.index);
    ++sh.injected;
    // A dead NIC uplink is the one place a packet is dropped: it never
    // entered the network, so there is nothing to purge or conserve.
    if (sh.degraded.has_value() && !sh.degraded->channel_alive(first)) {
      ++sh.dropped;
      continue;
    }
    const std::uint32_t slot = sh.packets.acquire(packet);
    const std::uint32_t lb = buf_local_of_global_[buf_base_[first]];
    for (std::uint32_t f = 0; f < config_.packet_flits; ++f) {
      sh.pool->push(lb, FlitRef{slot, f});
    }
    const std::uint32_t li = plan_.channel_local[first];
    sh.channel_flits[li] += config_.packet_flits;
    if (!sh.in_active[li]) {
      sh.in_active[li] = 1;
      sh.active.push_back(first);
    }
    sh.flits_in_system += config_.packet_flits;
    sh.acq_by_cycle[now] += 1;
  }

  if (sh.onoff != nullptr) sh.onoff->latch();
  sh.depth_sum_by_cycle[now] = sh.pool->switch_flits_total();
  // End-of-cycle sample, the same point serial FlowSim samples at — all
  // shards see want(now) identically (same recorder geometry).
  if constexpr (obs::kEnabled) {
    if (recorder_.want(now)) sample_recorder(sh, now);
  }
}

bool ShardedFlowSim::epoch_watchdog(Shard& sh, std::uint64_t now) {
  if (config_.watchdog_epoch == 0) return false;
  if ((now + 1) % config_.watchdog_epoch != 0) return false;
  // Piggyback the credit-conservation audit on the epoch boundary, as
  // serial does — each shard closes its own identity locally.
  if (sh.ledger != nullptr) {
    NBCLOS_ASSERT(local_credit_conservation_holds(sh));
  }
  // The verdict needs GLOBAL totals: a shard whose owned flits all wait
  // on a neighbor (or that only ejects) sees a locally-stuck or even
  // negative picture.  One extra barrier publishes every shard's slot;
  // all shards then reduce the SAME numbers to the same verdict.
  epoch_stats_[sh.index] = EpochStat{sh.flits_in_system, sh.flits_moved_epoch};
  sync_->barrier.arrive_and_wait();
  std::int64_t in_system = 0;
  std::uint64_t moved = 0;
  for (const EpochStat& e : epoch_stats_) {
    in_system += e.flits_in_system;
    moved += e.flits_moved;
  }
  if (in_system > 0 && moved == 0) {
    sh.deadlocked = true;
    sh.deadlock_cycle = now;
    sh.stuck_total = static_cast<std::uint64_t>(in_system);
    // This shard's candidates for the global 8-smallest occupied buffer
    // sample.  The pool is sparse, so walk live slots (allocation
    // order), recover global ids, and sort ascending — the same sample
    // the old dense ascending-global-id channel scan produced.
    constexpr std::size_t kMaxSample = 8;
    const auto global_of = [&](std::uint32_t lb) {
      const std::uint32_t c = sh.channel_of_local_buf[lb];
      if (is_nic_[c]) return buf_base_[c];
      return buf_base_[c] + (lb - buf_local_of_global_[buf_base_[c]]);
    };
    std::vector<std::uint32_t> occupied;
    sh.pool->for_each_live([&](std::uint32_t lb, std::uint32_t /*slot*/,
                               const FlitBufferPool::BufferSlot& sl) {
      if (sl.size > 0) occupied.push_back(global_of(lb));
    });
    std::sort(occupied.begin(), occupied.end());
    if (occupied.size() > kMaxSample) occupied.resize(kMaxSample);
    sh.stuck_buffers = std::move(occupied);
    return true;
  }
  sh.flits_moved_epoch = 0;
  return false;
}

bool ShardedFlowSim::local_credit_conservation_holds(Shard& sh) const {
  // Audit live slots only: a never-activated buffer holds full credits,
  // no flits, and nothing in flight (consuming a credit for an in-flight
  // wire pins the target's slot), so it satisfies the identity
  // trivially.  The slot-indexed scratch is hoisted into the shard.
  sh.audit_in_flight.assign(sh.pool->peak_slots(), 0);
  for (const Shard::Wire& w : sh.wires) {
    if (w.target == kEject) continue;
    if (w.target < switch_buffer_count_) {
      const std::uint32_t s =
          sh.pool->slot_id(buf_local_of_global_[w.target]);
      NBCLOS_ASSERT(s != FlitBufferPool::kNoSlot);  // consume pinned it
      ++sh.audit_in_flight[s];
    }
  }
  bool ok = true;
  sh.pool->for_each_live([&](std::uint32_t lb, std::uint32_t slot,
                             const FlitBufferPool::BufferSlot& sl) {
    if (lb >= sh.local_switch_buffers) return;  // NICs are uncredited
    const std::uint64_t sum = (config_.buffer_flits - sl.credits_used) +
                              sl.size + sh.audit_in_flight[slot] +
                              sl.pending_returns;
    if (sum != config_.buffer_flits) ok = false;
  });
  return ok;
}

void ShardedFlowSim::run_shard(std::uint32_t s) {
  try {
    Shard& sh = *shards_[s];
    if (config_.pin_shards && !numa_.pin_order.empty()) {
      sh.pinned =
          sim::pin_current_thread(numa_.pin_order[s % numa_.pin_order.size()])
              ? 1
              : 0;
    }
    // First-touch: the arena is allocated here, on the worker's own
    // thread (after pinning), so its pages land on this node.
    init_shard_arena(s);
    sh.numa_node = sim::current_numa_node(numa_);
    const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
    for (std::uint64_t now = 0; now < total; ++now) {
      if (sync_->poisoned()) {
        sync_->barrier.arrive_and_drop();
        return;
      }
      const bool measuring = now >= config_.warmup_cycles;
      phase_owner_pre(sh, now, measuring);
      sync_->barrier.arrive_and_wait();
      phase_execute(sh, now);
      sync_->barrier.arrive_and_wait();
      phase_owner_post(sh, now);
      sh.cycles_run = now + 1;
      if (epoch_watchdog(sh, now)) break;
    }
    // End-of-run conservation audit: wires and delay lines still hold
    // whatever was in flight when the loop ended (serial parity).
    if (sh.ledger != nullptr) {
      NBCLOS_ASSERT(local_credit_conservation_holds(sh));
    }
  } catch (...) {
    sync_->record_failure();
  }
}

FlowResult ShardedFlowSim::run() {
  NBCLOS_REQUIRE(!ran_, "ShardedFlowSim::run may only be called once");
  ran_ = true;
  obs::ScopedSpan span("flow.sharded.run", "flow");
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(plan_.shard_count);
  for (std::uint32_t s = 1; s < plan_.shard_count; ++s) {
    workers.emplace_back([this, s] { run_shard(s); });
  }
  // With pinning, shard 0 gets its own thread too — running it inline
  // would permanently re-pin the caller's thread.
  if (config_.pin_shards) {
    workers.emplace_back([this] { run_shard(0); });
  } else {
    run_shard(0);
  }
  for (auto& worker : workers) worker.join();
  sync_->rethrow_if_failed();

  FlowResult result = merge_results();
  if (result.deadlocked) capture_forensics();
  if constexpr (obs::kEnabled) {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    flush_obs(wall.count());
    span.arg("cycles", static_cast<double>(shards_[0]->cycles_run));
    span.arg("shards", static_cast<double>(plan_.shard_count));
    span.arg("rate", config_.injection_rate);
  }
  return result;
}

FlowResult ShardedFlowSim::merge_results() {
  FlowResult result;
  result.offered_load = config_.injection_rate;

  // Order-independent integer sums first.
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t stall_sum = 0;
  std::uint64_t stall_episodes = 0;
  std::uint64_t delivered_measured = 0;
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    result.injected_packets += sh.injected;
    result.delivered_packets += sh.delivered_packets;
    result.dropped_packets += sh.dropped;
    result.credit_stall_cycles += sh.credit_stall_cycles;
    result.vc_stall_cycles += sh.vc_stall_cycles;
    latency_sum += sh.latency_sum;
    latency_count += sh.latency_count;
    stall_sum += sh.stall_duration_sum;
    stall_episodes += sh.stall_episode_count;
    delivered_measured += sh.delivered_measured_flits;
  }
  result.accepted_throughput =
      static_cast<double>(delivered_measured) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(terminal_count_));
  result.mean_latency = latency_count > 0
                            ? static_cast<double>(latency_sum) /
                                  static_cast<double>(latency_count)
                            : 0.0;
  result.mean_stall_cycles = stall_episodes > 0
                                 ? static_cast<double>(stall_sum) /
                                       static_cast<double>(stall_episodes)
                                 : 0.0;

  // Histogram merges (identical geometry across shards by construction).
  QuantileHistogram latency_hist = shards_[0]->latency_hist;
  QuantileHistogram stall_hist = shards_[0]->stall_hist;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    latency_hist.merge(shards_[s]->latency_hist);
    stall_hist.merge(shards_[s]->stall_hist);
  }
  result.latency_bucket_width =
      static_cast<double>(latency_hist.bucket_width());
  if (latency_hist.count() > 0) {
    result.p50_latency = latency_hist.quantile(0.50);
    result.p99_latency = latency_hist.quantile(0.99);
    result.p999_latency = latency_hist.quantile(0.999);
  }
  result.p99_stall_cycles =
      stall_hist.count() > 0 ? stall_hist.quantile(0.99) : 0.0;

  const std::uint64_t cycles_run = shards_[0]->cycles_run;

  // Mean switch queue depth: replay serial's per-cycle Welford stream —
  // each cycle's sample is the summed end-of-cycle occupancy over the
  // global switch channel count, added in cycle order.
  if (switch_channel_count_ > 0) {
    RunningStats depth;
    for (std::uint64_t cyc = config_.warmup_cycles; cyc < cycles_run; ++cyc) {
      std::uint64_t total_flits = 0;
      for (const auto& shp : shards_) {
        total_flits += shp->depth_sum_by_cycle[cyc];
      }
      depth.add(static_cast<double>(total_flits) /
                static_cast<double>(switch_channel_count_));
    }
    result.mean_switch_queue_depth = depth.mean();
  }

  // Peak single-FIFO occupancy: each local pool tracks the high-water
  // mark over its own switch buffers, so the global peak is the max.
  for (const auto& shp : shards_) {
    result.peak_buffer_flits =
        std::max(result.peak_buffer_flits, shp->pool->peak_switch_flits());
  }

  // Peak live packets: replay serial's counter, which checks the peak
  // after each injection acquire.  Within a cycle releases (tail
  // ejections, during arrivals) precede acquires (injection), so the
  // running count peaks after the cycle's last acquire.
  std::int64_t live = 0;
  std::uint64_t peak_live = 0;
  for (std::uint64_t cyc = 0; cyc < cycles_run; ++cyc) {
    std::uint32_t acq = 0;
    std::uint32_t rel = 0;
    for (const auto& shp : shards_) {
      acq += shp->acq_by_cycle[cyc];
      rel += shp->rel_by_cycle[cyc];
    }
    live += static_cast<std::int64_t>(acq) - static_cast<std::int64_t>(rel);
    if (acq > 0 && static_cast<std::uint64_t>(live) > peak_live) {
      peak_live = static_cast<std::uint64_t>(live);
    }
  }
  result.peak_live_packets = peak_live;

  // Flow fairness: ascending terminals, same min/max fold as serial.
  bool first_flow = true;
  for (std::uint32_t t = 0; t < terminal_count_; ++t) {
    const Shard& owner = *shards_[plan_.shard_of_vertex(t)];
    if (owner.flow_sequence[t - owner.term_lo] == 0) continue;
    std::uint64_t delivered = 0;
    for (const auto& shp : shards_) delivered += shp->delivered_per_source[t];
    const double rate = static_cast<double>(delivered) /
                        static_cast<double>(config_.measure_cycles);
    if (first_flow) {
      result.min_flow_throughput = rate;
      result.max_flow_throughput = rate;
      first_flow = false;
    } else {
      result.min_flow_throughput = std::min(result.min_flow_throughput, rate);
      result.max_flow_throughput = std::max(result.max_flow_throughput, rate);
    }
  }

  // Deadlock diagnostics (every shard reduced the same epoch totals, so
  // the flags agree; the stuck-buffer sample is the global 8 smallest).
  result.deadlocked = shards_[0]->deadlocked;
  if (result.deadlocked) {
    result.deadlock_cycle = shards_[0]->deadlock_cycle;
    result.stuck_flits = shards_[0]->stuck_total;
    std::vector<std::uint32_t> stuck;
    for (const auto& shp : shards_) {
      stuck.insert(stuck.end(), shp->stuck_buffers.begin(),
                   shp->stuck_buffers.end());
    }
    std::sort(stuck.begin(), stuck.end());
    if (stuck.size() > 8) stuck.resize(8);
    result.stuck_buffers = std::move(stuck);
  }

  // Exactly one shard (the executor) tallies each channel, so the merge
  // is a gather through the executor-local dense index, not a sum.
  merged_link_busy_.assign(net_->channel_count(), 0);
  for (std::uint32_t c = 0; c < net_->channel_count(); ++c) {
    merged_link_busy_[c] =
        shards_[channel_executor_[c]]->link_busy[exec_index_[c]];
  }
  telemetry_ = Telemetry{};
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    telemetry_.cross_shard_flits += sh.cross_flits;
    telemetry_.cross_shard_credits += sh.cross_credits;
    telemetry_.mailbox_peak = std::max(telemetry_.mailbox_peak, sh.mailbox_peak);
  }
  return result;
}

void ShardedFlowSim::capture_forensics() {
  forensics_.valid = true;
  forensics_.trip_cycle = shards_[0]->deadlock_cycle;
  forensics_.stuck_flits = shards_[0]->stuck_total;
  // Every blocked FIFO lives in exactly one shard's frozen arena; the
  // reports use serial FlowSim's global buffer ids, so the merged walk
  // (finalize_forensics sorts and follows cross-shard waiting_for edges)
  // names the same chain a serial run would.
  // A blocked buffer's blocked_since field pins its slot, so walking
  // live slots sees every blocked FIFO; finalize_forensics sorts the
  // reports, erasing the allocation-order walk.
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    sh.pool->for_each_live([&](std::uint32_t lb, std::uint32_t /*slot*/,
                               const FlitBufferPool::BufferSlot& sl) {
      if (sl.blocked_since_plus1 == 0) return;
      const std::uint32_t c = sh.channel_of_local_buf[lb];
      const std::uint32_t v =
          is_nic_[c] ? 0u : lb - buf_local_of_global_[buf_base_[c]];
      BlockedBufferReport report;
      report.buffer = buf_base_[c] + v;
      report.channel = c;
      report.occupancy = sl.size;
      report.blocked_since = sl.blocked_since_plus1 - 1;
      if (sl.size > 0) {
        const FlitRef head = sh.pool->front(lb);
        if (head.flit_index > 0) {
          report.waiting_for = sl.out_alloc;  // global id already
        } else if (!dst_is_terminal_[c]) {
          const sim::Packet& packet = sh.packets.at(head.packet_slot);
          const std::uint32_t nc = routes_->next_channel_from(
              channel_dst_[c], packet.src_terminal, packet.dst_terminal);
          report.waiting_for =
              buf_base_[nc] + (is_nic_[nc] ? 0u : v % config_.vcs);
        }
      }
      forensics_.blocked.push_back(report);
    });
  }
  forensics_.tail = recorder_.tail(DeadlockForensics::kTailPoints);
  detail::finalize_forensics(forensics_);
}

std::size_t ShardedFlowSim::arena_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    if (sh.pool != nullptr) bytes += sh.pool->bytes();
    bytes += sh.packets.bytes();
    bytes += sh.channel_flits.capacity() * sizeof(std::uint32_t);
    bytes += sh.depth_sum_by_cycle.capacity() * sizeof(std::uint64_t);
    bytes += (sh.acq_by_cycle.capacity() + sh.rel_by_cycle.capacity()) *
             sizeof(std::uint32_t);
    bytes += sh.link_busy.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

ArenaStats ShardedFlowSim::arena_stats() const noexcept {
  ArenaStats stats;
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    if (sh.pool != nullptr) {
      stats.flit_arena_bytes += sh.pool->bytes();
      stats.resident_slots += sh.pool->resident_slots();
      stats.peak_slots += sh.pool->peak_slots();
      stats.spill_bytes += sh.pool->spill_bytes();
    }
    stats.packet_arena_bytes += sh.packets.bytes();
    stats.spill_bytes += sh.packets.spill_bytes();
  }
  return stats;
}

void ShardedFlowSim::flush_obs(double wall_seconds) {
  if (!obs::enabled()) return;
  auto& m = obs::metrics();
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t lookups = 0;
  std::uint64_t credit_stalls = 0;
  std::uint64_t vc_stalls = 0;
  std::uint64_t busy_total = 0;
  std::vector<std::uint32_t> peak_per_vc(config_.vcs, 0);
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    injected += sh.injected;
    delivered += sh.delivered_packets;
    dropped += sh.dropped;
    lookups += sh.route_lookups;
    credit_stalls += sh.credit_stall_cycles;
    vc_stalls += sh.vc_stall_cycles;
    for (const auto b : sh.link_busy) busy_total += b;
    for (std::uint32_t v = 0; v < config_.vcs; ++v) {
      peak_per_vc[v] = std::max(peak_per_vc[v], sh.peak_per_vc[v]);
    }
  }
  m.counter("flow.sharded.runs").add(1);
  m.counter("flow.cycles").add(shards_[0]->cycles_run);
  m.counter("flow.packets.injected").add(injected);
  m.counter("flow.packets.delivered").add(delivered);
  m.counter("flow.packets.dropped").add(dropped);
  m.counter("flow.route.lookups").add(lookups);
  m.counter("flow.stall.credit_cycles").add(credit_stalls);
  m.counter("flow.stall.vc_cycles").add(vc_stalls);
  m.counter("flow.flits.transmitted").add(busy_total);
  std::uint32_t peak_flits = 0;
  for (const auto& shp : shards_) {
    peak_flits = std::max(peak_flits, shp->pool->peak_switch_flits());
  }
  m.gauge("flow.buffer.peak_flits").set(static_cast<std::int64_t>(peak_flits));
  if (shards_[0]->deadlocked) m.counter("flow.deadlocks").add(1);
  m.counter("flow.sharded.cross_shard_flits").add(telemetry_.cross_shard_flits);
  m.counter("flow.sharded.cross_shard_credits")
      .add(telemetry_.cross_shard_credits);
  m.gauge("flow.sharded.shards")
      .set(static_cast<std::int64_t>(plan_.shard_count));
  m.gauge("flow.sharded.mailbox_peak")
      .set(static_cast<std::int64_t>(telemetry_.mailbox_peak));
  m.gauge("flow.buffer.pool_bytes")
      .set(static_cast<std::int64_t>(arena_bytes()));
  for (std::uint32_t v = 0; v < config_.vcs; ++v) {
    m.gauge("flow.vc.peak_flits." + std::to_string(v))
        .set(static_cast<std::int64_t>(peak_per_vc[v]));
  }
  for (const auto& shp : shards_) {
    const Shard& sh = *shp;
    m.gauge("flow.sharded.shard." + std::to_string(sh.index) + ".numa_node")
        .set(static_cast<std::int64_t>(sh.numa_node));
  }
  m.counter("flow.wall_us").add(static_cast<std::uint64_t>(wall_seconds * 1e6));
}

}  // namespace nbclos::flow
