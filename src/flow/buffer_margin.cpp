#include "nbclos/flow/buffer_margin.hpp"

#include <algorithm>
#include <utility>

#include "nbclos/flow/sharded.hpp"
#include "nbclos/obs/trace.hpp"

namespace nbclos::analysis {

namespace {

/// Shallowest FIFO the configured switching/backpressure pair can host
/// at all (the engine REQUIREs these; the sweep records thinner depths
/// as infeasible instead of throwing).
std::uint32_t min_feasible_depth(const flow::FlowConfig& base) {
  const std::uint32_t reservation =
      base.switching == flow::Switching::kVirtualCutThrough
          ? base.packet_flits
          : 1u;
  if (base.backpressure == flow::Backpressure::kOnOff) {
    return reservation + 1;
  }
  return reservation;
}

}  // namespace

BufferMarginResult buffer_margin_sweep(
    const std::shared_ptr<const flow::RouteSource>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    ThreadPool* pool) {
  NBCLOS_REQUIRE(!config.buffer_sizes.empty(),
                 "buffer-margin sweep needs at least one depth to probe");
  for (std::size_t i = 1; i < config.buffer_sizes.size(); ++i) {
    NBCLOS_REQUIRE(config.buffer_sizes[i - 1] < config.buffer_sizes[i],
                   "buffer depths must be strictly ascending");
  }
  NBCLOS_REQUIRE(config.probe_load > 0.0 && config.probe_load <= 1.0,
                 "probe load must be in (0, 1]");
  NBCLOS_REQUIRE(
      config.sustain_fraction > 0.0 && config.sustain_fraction <= 1.0,
      "sustain fraction must be in (0, 1]");

  obs::ScopedSpan span("flow.buffer_margin_sweep", "sweep");
  span.arg("depths", static_cast<double>(config.buffer_sizes.size()));
  const std::uint32_t floor_depth = min_feasible_depth(config.base);

  BufferMarginResult result;
  result.points.resize(config.buffer_sizes.size());
  const auto probe_at = [&](std::size_t i) {
    BufferMarginPoint& point = result.points[i];
    point.buffer_flits = config.buffer_sizes[i];
    if (point.buffer_flits < floor_depth) {
      point.feasible = false;
      return;
    }
    flow::FlowConfig probe = config.base;
    probe.buffer_flits = point.buffer_flits;
    probe.injection_rate = config.probe_load;
    flow::FlowSim sim(routes, traffic, probe);
    const auto run = sim.run();
    point.accepted_throughput = run.accepted_throughput;
    point.deadlocked = run.deadlocked;
    point.credit_stall_cycles = run.credit_stall_cycles;
    point.peak_buffer_flits = run.peak_buffer_flits;
    point.sustained = !run.deadlocked &&
                      run.accepted_throughput >=
                          config.sustain_fraction * config.probe_load;
  };
  if (pool != nullptr && config.buffer_sizes.size() > 1) {
    pool->parallel_for(0, config.buffer_sizes.size(), probe_at);
  } else {
    for (std::size_t i = 0; i < config.buffer_sizes.size(); ++i) probe_at(i);
  }

  for (const auto& point : result.points) {
    if (point.sustained) {
      result.min_flits_nonblocking = point.buffer_flits;
      break;
    }
  }
  return result;
}

BufferMarginResult buffer_margin_bisect(
    const std::shared_ptr<const flow::RouteSource>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    std::uint32_t shards) {
  NBCLOS_REQUIRE(!config.buffer_sizes.empty(),
                 "buffer-margin bisection needs at least one depth");
  for (std::size_t i = 1; i < config.buffer_sizes.size(); ++i) {
    NBCLOS_REQUIRE(config.buffer_sizes[i - 1] < config.buffer_sizes[i],
                   "buffer depths must be strictly ascending");
  }
  NBCLOS_REQUIRE(config.probe_load > 0.0 && config.probe_load <= 1.0,
                 "probe load must be in (0, 1]");
  NBCLOS_REQUIRE(
      config.sustain_fraction > 0.0 && config.sustain_fraction <= 1.0,
      "sustain fraction must be in (0, 1]");
  NBCLOS_REQUIRE(shards >= 1, "shard count must be >= 1");

  obs::ScopedSpan span("flow.buffer_margin_bisect", "sweep");
  span.arg("depths", static_cast<double>(config.buffer_sizes.size()));
  span.arg("shards", static_cast<double>(shards));
  const std::uint32_t floor_depth = min_feasible_depth(config.base);

  const auto probe_at = [&](std::size_t i) {
    BufferMarginPoint point;
    point.buffer_flits = config.buffer_sizes[i];
    if (point.buffer_flits < floor_depth) {
      point.feasible = false;
      return point;
    }
    flow::FlowConfig probe = config.base;
    probe.buffer_flits = point.buffer_flits;
    probe.injection_rate = config.probe_load;
    probe.counter_injection = true;
    flow::ShardedFlowSim sim(routes, traffic, probe, shards);
    const auto run = sim.run();
    point.accepted_throughput = run.accepted_throughput;
    point.deadlocked = run.deadlocked;
    point.credit_stall_cycles = run.credit_stall_cycles;
    point.peak_buffer_flits = run.peak_buffer_flits;
    point.sustained = !run.deadlocked &&
                      run.accepted_throughput >=
                          config.sustain_fraction * config.probe_load;
    return point;
  };

  // Lower-bound search for the first sustained index; probed points are
  // kept so callers still see throughput/stall evidence for the margin
  // and its infeasible/unsustained neighbors.
  BufferMarginResult result;
  std::vector<std::pair<std::size_t, BufferMarginPoint>> probed;
  std::size_t lo = 0;
  std::size_t hi = config.buffer_sizes.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const auto point = probe_at(mid);
    probed.emplace_back(mid, point);
    if (point.sustained) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo < config.buffer_sizes.size()) {
    result.min_flits_nonblocking = config.buffer_sizes[lo];
    // The boundary itself may have been probed only as a midpoint of an
    // earlier iteration; ensure its evidence is present.
    const bool have_boundary =
        std::any_of(probed.begin(), probed.end(),
                    [&](const auto& e) { return e.first == lo; });
    if (!have_boundary) probed.emplace_back(lo, probe_at(lo));
  }
  std::sort(probed.begin(), probed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  result.points.reserve(probed.size());
  for (auto& [index, point] : probed) result.points.push_back(point);
  return result;
}

BufferMarginResult buffer_margin_sweep(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    ThreadPool* pool) {
  return buffer_margin_sweep(
      std::static_pointer_cast<const flow::RouteSource>(
          std::make_shared<const flow::CacheRouteSource>(routes)),
      traffic, config, pool);
}

BufferMarginResult buffer_margin_bisect(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    std::uint32_t shards) {
  return buffer_margin_bisect(
      std::static_pointer_cast<const flow::RouteSource>(
          std::make_shared<const flow::CacheRouteSource>(routes)),
      traffic, config, shards);
}

}  // namespace nbclos::analysis
