#include "nbclos/flow/buffer_margin.hpp"

#include "nbclos/obs/trace.hpp"

namespace nbclos::analysis {

namespace {

/// Shallowest FIFO the configured switching/backpressure pair can host
/// at all (the engine REQUIREs these; the sweep records thinner depths
/// as infeasible instead of throwing).
std::uint32_t min_feasible_depth(const flow::FlowConfig& base) {
  const std::uint32_t reservation =
      base.switching == flow::Switching::kVirtualCutThrough
          ? base.packet_flits
          : 1u;
  if (base.backpressure == flow::Backpressure::kOnOff) {
    return reservation + 1;
  }
  return reservation;
}

}  // namespace

BufferMarginResult buffer_margin_sweep(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    ThreadPool* pool) {
  NBCLOS_REQUIRE(!config.buffer_sizes.empty(),
                 "buffer-margin sweep needs at least one depth to probe");
  for (std::size_t i = 1; i < config.buffer_sizes.size(); ++i) {
    NBCLOS_REQUIRE(config.buffer_sizes[i - 1] < config.buffer_sizes[i],
                   "buffer depths must be strictly ascending");
  }
  NBCLOS_REQUIRE(config.probe_load > 0.0 && config.probe_load <= 1.0,
                 "probe load must be in (0, 1]");
  NBCLOS_REQUIRE(
      config.sustain_fraction > 0.0 && config.sustain_fraction <= 1.0,
      "sustain fraction must be in (0, 1]");

  obs::ScopedSpan span("flow.buffer_margin_sweep", "sweep");
  span.arg("depths", static_cast<double>(config.buffer_sizes.size()));
  const std::uint32_t floor_depth = min_feasible_depth(config.base);

  BufferMarginResult result;
  result.points.resize(config.buffer_sizes.size());
  const auto probe_at = [&](std::size_t i) {
    BufferMarginPoint& point = result.points[i];
    point.buffer_flits = config.buffer_sizes[i];
    if (point.buffer_flits < floor_depth) {
      point.feasible = false;
      return;
    }
    flow::FlowConfig probe = config.base;
    probe.buffer_flits = point.buffer_flits;
    probe.injection_rate = config.probe_load;
    flow::FlowSim sim(routes, traffic, probe);
    const auto run = sim.run();
    point.accepted_throughput = run.accepted_throughput;
    point.deadlocked = run.deadlocked;
    point.credit_stall_cycles = run.credit_stall_cycles;
    point.peak_buffer_flits = run.peak_buffer_flits;
    point.sustained = !run.deadlocked &&
                      run.accepted_throughput >=
                          config.sustain_fraction * config.probe_load;
  };
  if (pool != nullptr && config.buffer_sizes.size() > 1) {
    pool->parallel_for(0, config.buffer_sizes.size(), probe_at);
  } else {
    for (std::size_t i = 0; i < config.buffer_sizes.size(); ++i) probe_at(i);
  }

  for (const auto& point : result.points) {
    if (point.sustained) {
      result.min_flits_nonblocking = point.buffer_flits;
      break;
    }
  }
  return result;
}

}  // namespace nbclos::analysis
