#include "nbclos/flow/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <string>

#include "nbclos/obs/trace.hpp"
#include "nbclos/sim/injection_rng.hpp"

namespace nbclos::flow {

namespace {

/// Channels whose source vertex is a switch — each owns `vcs` finite
/// buffers; the rest are terminal NIC channels with one unbounded ring.
std::uint32_t count_switch_source_channels(const Network& net) {
  std::uint32_t count = 0;
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    if (net.vertex(net.channel_src(c)).kind != VertexKind::kTerminal) ++count;
  }
  return count;
}

/// Fixed geometry for the shared stall-latency histogram: the registry
/// requires one geometry per name, so the cap cannot follow run length.
constexpr std::uint64_t kStallHistCap = 1u << 20;

}  // namespace

FlowSim::FlowSim(std::shared_ptr<const routing::ChannelRouteCache> routes,
                 const sim::TrafficPattern& traffic, FlowConfig config,
                 const fault::DegradedView* degraded,
                 std::vector<fault::FaultEvent> fault_events)
    : FlowSim(std::static_pointer_cast<const RouteSource>(
                  std::make_shared<const CacheRouteSource>(std::move(routes))),
              traffic, config, degraded, std::move(fault_events)) {}

FlowSim::FlowSim(std::shared_ptr<const RouteSource> routes,
                 const sim::TrafficPattern& traffic, FlowConfig config,
                 const fault::DegradedView* degraded,
                 std::vector<fault::FaultEvent> fault_events)
    : routes_(std::move(routes)),
      net_(&routes_->network()),
      traffic_(&traffic),
      config_(config),
      fault_events_(std::move(fault_events)),
      buf_base_(net_->channel_count(), 0),
      is_nic_(net_->channel_count(), 0),
      channel_dst_(net_->channel_count(), 0),
      dst_is_terminal_(net_->channel_count(), 0),
      next_vc_(net_->channel_count(), 0),
      channel_flits_(net_->channel_count(), 0),
      in_active_(net_->channel_count(), 0),
      pool_(count_switch_source_channels(routes_->network()) * config.vcs,
            net_->channel_count() -
                count_switch_source_channels(routes_->network()),
            config.buffer_flits),
      rng_(config.seed),
      latency_hist_(config.warmup_cycles + config.measure_cycles),
      stall_hist_(config.warmup_cycles + config.measure_cycles) {
  NBCLOS_REQUIRE(config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
                 "injection rate must be in [0, 1] flits/cycle");
  NBCLOS_REQUIRE(config.packet_flits >= 1, "packets need at least one flit");
  NBCLOS_REQUIRE(config.vcs >= 1, "need at least one virtual channel");
  NBCLOS_REQUIRE(degraded == nullptr || &degraded->network() == net_,
                 "degraded view was built over a different network");
  NBCLOS_REQUIRE(fault_events_.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  if (degraded != nullptr) degraded_.emplace(*degraded);
  std::stable_sort(fault_events_.begin(), fault_events_.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  head_reservation_ = config.head_reservation_flits();
  if (config.switching == Switching::kVirtualCutThrough) {
    NBCLOS_REQUIRE(config.buffer_flits >= config.packet_flits,
                   "virtual cut-through buffers a whole packet per FIFO: "
                   "buffer_flits must be >= packet_flits");
  }
  packet_rate_ =
      config.injection_rate / static_cast<double>(config.packet_flits);
  terminal_vertices_ = net_->terminals();
  NBCLOS_REQUIRE(traffic.terminal_count() == terminal_vertices_.size(),
                 "traffic pattern size does not match network");
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    NBCLOS_REQUIRE(terminal_vertices_[t] == t,
                   "terminals must be vertices [0, T) (library builders "
                   "guarantee this)");
  }
  flow_sequence_.assign(terminal_vertices_.size(), 0);
  delivered_per_source_.assign(terminal_vertices_.size(), 0);

  // Buffer id assignment: switch channels take `vcs` consecutive ids in
  // channel order, NIC channels one id each after all switch buffers —
  // matching the FlitBufferPool address split.  Only the id→channel
  // decoding tables are materialized (per channel); per-buffer state is
  // slot-sparse inside the pool.
  switch_buffer_count_ = pool_.switch_buffer_count();
  channel_of_switch_idx_.assign(switch_buffer_count_ / config.vcs, 0);
  channel_of_nic_idx_.assign(
      pool_.buffer_count() - switch_buffer_count_, 0);
  std::uint32_t switch_idx = 0;
  std::uint32_t nic_idx = 0;
  for (std::uint32_t c = 0; c < net_->channel_count(); ++c) {
    channel_dst_[c] = net_->channel_dst(c);
    dst_is_terminal_[c] =
        net_->vertex(channel_dst_[c]).kind == VertexKind::kTerminal;
    if (net_->vertex(net_->channel_src(c)).kind == VertexKind::kTerminal) {
      is_nic_[c] = 1;
      buf_base_[c] = switch_buffer_count_ + nic_idx;
      channel_of_nic_idx_[nic_idx++] = c;
    } else {
      buf_base_[c] = switch_idx * config.vcs;
      channel_of_switch_idx_[switch_idx++] = c;
    }
  }
  switch_channel_count_ = switch_idx;

  if (config.backpressure == Backpressure::kCredit) {
    ledger_ = std::make_unique<CreditLedger>(pool_, config.credit_delay);
  } else {
    NBCLOS_REQUIRE(
        config.buffer_flits >= head_reservation_ + 1,
        "on/off signaling needs one slot of slack beyond the head "
        "reservation (see onoff_off_threshold)");
    onoff_ =
        std::make_unique<OnOffSignal>(pool_, config.onoff_off_threshold());
  }
  peak_per_vc_.assign(config.vcs, 0);
  busy_wires_.reserve(net_->channel_count());
  active_.reserve(net_->channel_count());
  link_busy_flits_.assign(net_->channel_count(), 0);
  stall_metric_ = &obs::metrics().histogram("flow.stall_cycles", kStallHistCap);
  if constexpr (obs::kEnabled) arm_recorder();
}

void FlowSim::arm_recorder() {
  if (!config_.record_timeseries) return;
  obs::FlightRecorder::Config rec;
  rec.cadence = config_.record_cadence;
  rec.ring_capacity = config_.record_ring_capacity;
  rec.shards = 1;
  recorder_.configure(rec);
  // Same names, cadence, and capacity as ShardedFlowSim's recorder, so
  // the per-shard sums of these kInvariant series are bit-identical to
  // this serial recording at any shard count.
  using obs::SeriesAgg;
  rec_in_system_ = recorder_.series("flow.flits.in_system", SeriesAgg::kSum);
  rec_buffer_occupancy_ =
      recorder_.series("flow.buffer.occupancy", SeriesAgg::kSum);
  rec_credit_stalls_ =
      recorder_.series("flow.stall.credit_cycles", SeriesAgg::kSum);
  rec_vc_stalls_ = recorder_.series("flow.stall.vc_cycles", SeriesAgg::kSum);
  rec_blocked_heads_ = recorder_.series("flow.blocked.heads", SeriesAgg::kSum);
  rec_injected_ = recorder_.series("flow.packets.injected", SeriesAgg::kSum);
  rec_delivered_ = recorder_.series("flow.packets.delivered", SeriesAgg::kSum);
}

void FlowSim::sample_recorder() {
  recorder_.record(rec_in_system_, 0, now_,
                   static_cast<std::int64_t>(flits_in_system_));
  recorder_.record(rec_buffer_occupancy_, 0, now_,
                   static_cast<std::int64_t>(pool_.switch_flits_total()));
  recorder_.record(rec_credit_stalls_, 0, now_,
                   static_cast<std::int64_t>(credit_stall_cycles_));
  recorder_.record(rec_vc_stalls_, 0, now_,
                   static_cast<std::int64_t>(vc_stall_cycles_));
  recorder_.record(rec_blocked_heads_, 0, now_,
                   static_cast<std::int64_t>(blocked_heads_));
  recorder_.record(rec_injected_, 0, now_,
                   static_cast<std::int64_t>(injected_));
  recorder_.record(rec_delivered_, 0, now_,
                   static_cast<std::int64_t>(delivered_packets_));
}

void FlowSim::activate(std::uint32_t channel) {
  if (in_active_[channel]) return;
  in_active_[channel] = 1;
  active_.push_back(channel);
}

void FlowSim::note_blocked(std::uint32_t b, bool credit_block) {
  if (credit_block) {
    ++credit_stall_cycles_;
  } else {
    ++vc_stall_cycles_;
  }
  if (pool_.blocked_since(b) == kNotBlocked) {
    pool_.set_blocked_since(b, now_);
    ++blocked_heads_;
  }
}

void FlowSim::note_unblocked(std::uint32_t b) {
  const std::uint64_t since = pool_.blocked_since(b);
  if (since == kNotBlocked) return;
  const std::uint64_t duration = now_ - since;
  pool_.clear_blocked_since(b);
  --blocked_heads_;
  stall_stats_.add(static_cast<double>(duration));
  stall_duration_sum_ += duration;
  ++stall_episode_count_;
  stall_hist_.add(duration);
  stall_metric_->record(duration);
}

void FlowSim::apply_due_faults() {
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].cycle <= now_) {
    degraded_->apply(fault_events_[next_fault_]);
    ++next_fault_;
  }
}

bool FlowSim::backpressure_ok(std::uint32_t b,
                              std::uint32_t reservation) const {
  // On/off encodes the reservation in its latched threshold; credits
  // compare against it directly.
  if (ledger_ != nullptr) return ledger_->credits(b) >= reservation;
  return !onoff_->off(b);
}

std::uint32_t FlowSim::allocate_downstream(std::uint32_t from_vc,
                                           const sim::Packet& packet,
                                           std::uint32_t at_vertex,
                                           bool* credit_block) {
  ++route_lookups_;
  const std::uint32_t nc = routes_->next_channel_from(
      at_vertex, packet.src_terminal, packet.dst_terminal);
  NBCLOS_DEBUG_CHECK(net_->channel_src(nc) == at_vertex,
                     "route cache returned a foreign channel");
  // A dead next channel blocks the head in place (fail-stop: the worm
  // waits, it is never purged) — accounted as a credit stall.
  if (!channel_usable(nc)) {
    *credit_block = true;
    return kNone;
  }
  // First-free VC scan starting at the packet's current VC ("stay in
  // lane when possible"); a VC is usable when no other packet holds its
  // write claim and backpressure admits the head reservation.
  bool saw_credit_block = false;
  for (std::uint32_t j = 0; j < config_.vcs; ++j) {
    const std::uint32_t nv = (from_vc + j) % config_.vcs;
    const std::uint32_t nb = buf_base_[nc] + nv;
    if (pool_.claim(nb) != kNone) continue;
    if (!backpressure_ok(nb, head_reservation_)) {
      saw_credit_block = true;
      continue;
    }
    return nb;
  }
  *credit_block = saw_credit_block;
  return kNone;
}

bool FlowSim::try_transmit(std::uint32_t c) {
  // A dead channel transmits nothing: its queued flits wait in place
  // (and eventually trip the watchdog if nothing recovers them).
  if (!channel_usable(c)) return false;
  const std::uint32_t vc_count = is_nic_[c] ? 1u : config_.vcs;
  const std::uint32_t start = next_vc_[c];
  for (std::uint32_t k = 0; k < vc_count; ++k) {
    const std::uint32_t vc = (start + k) % vc_count;
    const std::uint32_t b = buf_base_[c] + vc;
    if (pool_.size(b) == 0) continue;
    const FlitRef flit = pool_.front(b);
    const sim::Packet& packet = packets_.at(flit.packet_slot);
    std::uint32_t target;
    if (dst_is_terminal_[c]) {
      target = kEject;  // the terminal sink always accepts
    } else if (flit.flit_index == 0) {
      NBCLOS_ASSERT(pool_.out_alloc(b) == kNone);
      bool credit_block = false;
      const std::uint32_t nb =
          allocate_downstream(vc, packet, channel_dst_[c], &credit_block);
      if (nb == kNone) {
        note_blocked(b, credit_block);
        continue;  // this VC stalls; the next may still use the channel
      }
      pool_.set_claim(nb, flit.packet_slot);
      pool_.set_out_alloc(b, nb);
      target = nb;
    } else {
      target = pool_.out_alloc(b);
      NBCLOS_ASSERT(target != kNone);
      // Wormhole body flits re-check backpressure every cycle; VCT
      // reserved the whole packet at the head, so bodies stream freely.
      if (config_.switching == Switching::kWormhole &&
          !backpressure_ok(target, 1)) {
        note_blocked(b, true);
        continue;
      }
    }
    pool_.pop(b);
    --channel_flits_[c];
    if (b < switch_buffer_count_) {
      if (ledger_ != nullptr) ledger_->schedule_return(b, now_);
      if (onoff_ != nullptr) onoff_->mark_dirty(b);
    }
    if (target != kEject && ledger_ != nullptr) ledger_->consume(target);
    if (flit.flit_index + 1 == packet.size_flits) {
      pool_.set_out_alloc(b, kNone);
    }
    busy_wires_.push_back(BusyWire{c, target, flit});
    link_busy_flits_[c] += 1;
    ++flits_moved_epoch_;
    note_unblocked(b);
    pool_.maybe_release(b);  // drained + unblocked: recycle the slot
    next_vc_[c] = (vc + 1) % vc_count;
    return true;
  }
  return false;
}

void FlowSim::eject(FlitRef flit) {
  const sim::Packet& packet = packets_.at(flit.packet_slot);
  --flits_in_system_;
  const bool tail = flit.flit_index + 1 == packet.size_flits;
  if (tail) ++delivered_packets_;
  if (measuring_) {
    // Flit-level accrual: throughput counts every flit ejected inside
    // the window (PacketSim books the whole packet at once; for 1-flit
    // packets — the golden regime — the two are identical).
    ++delivered_measured_flits_;
    ++delivered_per_source_[packet.src_terminal];
    if (tail && packet.injected_cycle >= config_.warmup_cycles) {
      const std::uint64_t latency = now_ - packet.injected_cycle;
      latency_.add(static_cast<double>(latency));
      latency_sum_ += latency;
      ++latency_count_;
      latency_hist_.add(latency);
    }
  }
  if (tail) packets_.release(flit.packet_slot);
}

void FlowSim::step_arrivals() {
  // Sorting fixes the ejection order, so the latency accumulators see
  // deliveries in ascending channel order — the same order PacketSim's
  // sorted flying_ sweep produces (bit-reproducibility of Welford sums).
  std::sort(busy_wires_.begin(), busy_wires_.end(),
            [](const BusyWire& a, const BusyWire& b) {
              return a.channel < b.channel;
            });
  for (const auto& w : busy_wires_) {
    if (w.target == kEject) {
      eject(w.flit);
    } else {
      pool_.push(w.target, w.flit);
      const std::uint32_t oc = owner_channel_of(w.target);
      ++channel_flits_[oc];
      activate(oc);
      if (onoff_ != nullptr) onoff_->mark_dirty(w.target);
      const std::uint32_t vc = w.target - buf_base_[oc];
      if (pool_.size(w.target) > peak_per_vc_[vc]) {
        peak_per_vc_[vc] = pool_.size(w.target);
      }
      const sim::Packet& packet = packets_.at(w.flit.packet_slot);
      if (w.flit.flit_index + 1 == packet.size_flits) {
        // Tail landed: the VC is whole again and accepts a new claimant.
        NBCLOS_ASSERT(pool_.claim(w.target) == w.flit.packet_slot);
        pool_.set_claim(w.target, kNone);
      }
    }
  }
  busy_wires_.clear();
}

void FlowSim::step_transmissions() {
  std::sort(active_.begin(), active_.end());
  std::size_t keep = 0;
  const std::size_t active_count = active_.size();
  for (std::size_t i = 0; i < active_count; ++i) {
    const auto c = active_[i];
    if (channel_flits_[c] == 0) {  // drained since the last sweep
      in_active_[c] = 0;
      continue;
    }
    (void)try_transmit(c);
    if (channel_flits_[c] == 0) {
      in_active_[c] = 0;
      continue;
    }
    active_[keep++] = c;
  }
  active_.resize(keep);
}

void FlowSim::inject_packet(std::uint32_t t, std::uint32_t dst) {
  sim::Packet packet;
  packet.id = next_packet_id_++;
  packet.src_terminal = terminal_vertices_[t];
  packet.dst_terminal = terminal_vertices_[dst];
  packet.size_flits = config_.packet_flits;
  packet.injected_cycle = now_;
  packet.flow_sequence = flow_sequence_[t]++;
  ++route_lookups_;
  const std::uint32_t first = routes_->next_channel_from(
      terminal_vertices_[t], packet.src_terminal, packet.dst_terminal);
  NBCLOS_DEBUG_CHECK(is_nic_[first] != 0,
                     "first hop must leave through the source NIC");
  ++injected_;
  // A dead NIC uplink is the one place a packet is dropped: it never
  // entered the network, so there is nothing to purge or conserve.
  if (!channel_usable(first)) {
    ++dropped_;
    return;
  }
  const std::uint32_t slot = packets_.acquire(packet);
  const std::uint32_t b = buf_base_[first];
  for (std::uint32_t f = 0; f < config_.packet_flits; ++f) {
    pool_.push(b, FlitRef{slot, f});
  }
  channel_flits_[first] += config_.packet_flits;
  activate(first);
  flits_in_system_ += config_.packet_flits;
  if (packets_.live() > peak_live_packets_) {
    peak_live_packets_ = packets_.live();
  }
}

void FlowSim::step_injection() {
  const auto terminal_count =
      static_cast<std::uint32_t>(terminal_vertices_.size());
  if (config_.counter_injection) {
    // Every draw is a pure function of (seed, cycle, terminal) — the
    // discipline ShardedFlowSim replays over its owned terminal ranges.
    for (std::uint32_t t = 0; t < terminal_count; ++t) {
      SplitMix64 sm(sim::injection_counter_state(config_.seed, now_, t));
      if (!sim::injection_bernoulli(sm, packet_rate_)) continue;
      Xoshiro256 dest_rng(sm.next());
      const auto dst = traffic_->destination(t, dest_rng);
      if (!dst.has_value()) continue;
      inject_packet(t, *dst);
    }
    return;
  }
  // Mirrors PacketSim::step_injection draw for draw (one bernoulli, then
  // one destination draw, terminals ascending) — the shared RNG sequence
  // is what makes the cross-engine golden equivalence exact.
  for (std::uint32_t t = 0; t < terminal_count; ++t) {
    if (!rng_.bernoulli(packet_rate_)) continue;
    const auto dst = traffic_->destination(t, rng_);
    if (!dst.has_value()) continue;
    inject_packet(t, *dst);
  }
}

bool FlowSim::watchdog_tripped() {
  if (config_.watchdog_epoch == 0) return false;
  if ((now_ + 1) % config_.watchdog_epoch != 0) return false;
  // Piggyback the credit-conservation audit on the epoch boundary: O(B)
  // every epoch cycles is invisible, and a ledger bug surfaces here long
  // before it corrupts results.
  if (ledger_ != nullptr) NBCLOS_ASSERT(credit_conservation_holds());
  if (flits_in_system_ > 0 && flits_moved_epoch_ == 0) {
    deadlocked_ = true;
    return true;
  }
  flits_moved_epoch_ = 0;
  return false;
}

void FlowSim::fill_deadlock_diag(FlowResult& result) const {
  // Live slots iterate in allocation order; collect every occupied
  // buffer, then sort and truncate so the sample is the 8 smallest ids —
  // exactly what the dense ascending scan used to produce.
  constexpr std::size_t kMaxSample = 8;
  std::vector<std::uint32_t> occupied;
  pool_.for_each_live([&](std::uint32_t b, std::uint32_t,
                          const FlitBufferPool::BufferSlot& sl) {
    if (sl.size > 0) occupied.push_back(b);
  });
  std::sort(occupied.begin(), occupied.end());
  if (occupied.size() > kMaxSample) occupied.resize(kMaxSample);
  result.stuck_buffers = std::move(occupied);
}

namespace detail {

void finalize_forensics(DeadlockForensics& forensics) {
  auto& blocked = forensics.blocked;
  std::sort(blocked.begin(), blocked.end(),
            [](const BlockedBufferReport& a, const BlockedBufferReport& b) {
              return a.buffer < b.buffer;
            });
  const auto find = [&](std::uint32_t buffer) -> std::ptrdiff_t {
    const auto it = std::lower_bound(
        blocked.begin(), blocked.end(), buffer,
        [](const BlockedBufferReport& r, std::uint32_t key) {
          return r.buffer < key;
        });
    if (it == blocked.end() || it->buffer != buffer) return -1;
    return it - blocked.begin();
  };
  // Walk the waiting_for edges (each node has out-degree <= 1, so the
  // reachable set from any start is a rho shape: tail + at most one
  // cycle).  Three-state marking keeps the whole pass O(n).
  std::vector<std::uint8_t> state(blocked.size(), 0);  // 0 new, 1 path, 2 done
  std::vector<std::ptrdiff_t> path;
  for (std::size_t s = 0; s < blocked.size() && forensics.wait_cycle.empty();
       ++s) {
    if (state[s] != 0) continue;
    path.clear();
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(s);
    while (i >= 0 && state[i] == 0) {
      state[i] = 1;
      path.push_back(i);
      const std::uint32_t next = blocked[i].waiting_for;
      i = next == BlockedBufferReport::kWaitsOnNone ? -1 : find(next);
    }
    if (i >= 0 && state[i] == 1) {
      const auto start = std::find(path.begin(), path.end(), i);
      for (auto it = start; it != path.end(); ++it) {
        blocked[*it].on_cycle = true;
        forensics.wait_cycle.push_back(blocked[*it].buffer);
      }
    }
    for (const auto p : path) state[p] = 2;
  }
  if (blocked.size() > DeadlockForensics::kMaxBlocked) {
    std::stable_partition(
        blocked.begin(), blocked.end(),
        [](const BlockedBufferReport& r) { return r.on_cycle; });
    blocked.resize(DeadlockForensics::kMaxBlocked);
    std::sort(blocked.begin(), blocked.end(),
              [](const BlockedBufferReport& a, const BlockedBufferReport& b) {
                return a.buffer < b.buffer;
              });
  }
}

}  // namespace detail

void FlowSim::capture_forensics() {
  forensics_.valid = true;
  forensics_.trip_cycle = now_;
  forensics_.stuck_flits = flits_in_system_;
  // Blocked FIFOs are exactly the live slots with blocked_since set;
  // collection order is allocation order, which is fine because
  // finalize_forensics sorts by buffer id.
  pool_.for_each_live([&](std::uint32_t b, std::uint32_t,
                          const FlitBufferPool::BufferSlot& sl) {
    if (sl.blocked_since_plus1 == 0) return;
    BlockedBufferReport report;
    report.buffer = b;
    report.channel = owner_channel_of(b);
    report.occupancy = sl.size;
    report.blocked_since = sl.blocked_since_plus1 - 1;
    if (sl.size > 0) {
      const FlitRef head = pool_.front(b);
      const std::uint32_t c = report.channel;
      if (head.flit_index > 0) {
        // Body flit: the worm already holds its downstream allocation —
        // that buffer IS the wait edge, exactly.
        report.waiting_for = sl.out_alloc;
      } else if (!dst_is_terminal_[c]) {
        // Head waiting to allocate: name the scan's first candidate —
        // next channel from the route source, scan-start VC.
        const sim::Packet& packet = packets_.at(head.packet_slot);
        const std::uint32_t nc = routes_->next_channel_from(
            channel_dst_[c], packet.src_terminal, packet.dst_terminal);
        const std::uint32_t from_vc =
            b < switch_buffer_count_ ? b - buf_base_[c] : 0u;
        report.waiting_for =
            buf_base_[nc] + (is_nic_[nc] ? 0u : from_vc % config_.vcs);
      }
    }
    forensics_.blocked.push_back(report);
  });
  forensics_.tail = recorder_.tail(DeadlockForensics::kTailPoints);
  detail::finalize_forensics(forensics_);
}

bool FlowSim::credit_conservation_holds() const {
  NBCLOS_REQUIRE(ledger_ != nullptr,
                 "credit audit requires credit backpressure mode");
  // Never-activated buffers hold full credits and nothing else, so the
  // identity closes for them trivially; the audit only walks live slots
  // (in-flight flits always target a live slot — consume pinned it).
  // Scratch is slot-indexed and hoisted into a member so epoch audits
  // do not allocate.
  audit_in_flight_.assign(pool_.peak_slots(), 0);
  for (const auto& w : busy_wires_) {
    if (w.target == kEject) continue;
    const std::uint32_t s = pool_.slot_id(w.target);
    NBCLOS_ASSERT(s != FlitBufferPool::kNoSlot);
    ++audit_in_flight_[s];
  }
  bool holds = true;
  pool_.for_each_live([&](std::uint32_t b, std::uint32_t s,
                          const FlitBufferPool::BufferSlot& sl) {
    if (b >= switch_buffer_count_) return;  // NIC buffers are untracked
    const std::uint64_t sum = (config_.buffer_flits - sl.credits_used) +
                              sl.size + audit_in_flight_[s] +
                              sl.pending_returns;
    if (sum != config_.buffer_flits) holds = false;
  });
  return holds;
}

FlowResult FlowSim::run() {
  obs::ScopedSpan span("flow.run", "flow");
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  for (now_ = 0; now_ < total; ++now_) {
    measuring_ = now_ >= config_.warmup_cycles;
    if (degraded_.has_value()) apply_due_faults();
    if (ledger_ != nullptr) ledger_->advance(now_);
    step_arrivals();
    step_transmissions();
    step_injection();
    if (onoff_ != nullptr) onoff_->latch();
    if (measuring_ && switch_channel_count_ > 0) {
      // Same arithmetic as PacketSim's sample: total flits across switch
      // buffers over the number of switch output channels.
      queue_depth_samples_.add(
          static_cast<double>(pool_.switch_flits_total()) /
          static_cast<double>(switch_channel_count_));
    }
    if (recorder_.want(now_)) sample_recorder();
    if (watchdog_tripped()) break;
  }

  FlowResult result;
  result.offered_load = config_.injection_rate;
  result.injected_packets = injected_;
  result.delivered_packets = delivered_packets_;
  result.dropped_packets = dropped_;
  result.accepted_throughput =
      static_cast<double>(delivered_measured_flits_) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(terminal_vertices_.size()));
  // Counter mode reports the exact integer mean (order-independent, so
  // it merges across shards); the legacy mode keeps its Welford stream.
  result.mean_latency =
      config_.counter_injection
          ? (latency_count_ > 0 ? static_cast<double>(latency_sum_) /
                                      static_cast<double>(latency_count_)
                                : 0.0)
          : latency_.mean();
  result.latency_bucket_width =
      static_cast<double>(latency_hist_.bucket_width());
  if (latency_hist_.count() > 0) {
    result.p50_latency = latency_hist_.quantile(0.50);
    result.p99_latency = latency_hist_.quantile(0.99);
    result.p999_latency = latency_hist_.quantile(0.999);
  }
  result.mean_switch_queue_depth = queue_depth_samples_.mean();
  bool first_flow = true;
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    if (flow_sequence_[t] == 0) continue;
    const double rate = static_cast<double>(delivered_per_source_[t]) /
                        static_cast<double>(config_.measure_cycles);
    if (first_flow) {
      result.min_flow_throughput = rate;
      result.max_flow_throughput = rate;
      first_flow = false;
    } else {
      result.min_flow_throughput = std::min(result.min_flow_throughput, rate);
      result.max_flow_throughput = std::max(result.max_flow_throughput, rate);
    }
  }
  result.credit_stall_cycles = credit_stall_cycles_;
  result.vc_stall_cycles = vc_stall_cycles_;
  result.mean_stall_cycles =
      config_.counter_injection
          ? (stall_episode_count_ > 0
                 ? static_cast<double>(stall_duration_sum_) /
                       static_cast<double>(stall_episode_count_)
                 : 0.0)
          : stall_stats_.mean();
  result.p99_stall_cycles =
      stall_hist_.count() > 0 ? stall_hist_.quantile(0.99) : 0.0;
  result.peak_buffer_flits = pool_.peak_switch_flits();
  result.peak_live_packets = peak_live_packets_;
  result.deadlocked = deadlocked_;
  if (deadlocked_) {
    result.deadlock_cycle = now_;
    result.stuck_flits = flits_in_system_;
    fill_deadlock_diag(result);
    capture_forensics();
  }
  // End-of-run conservation audit: the wires and delay line still hold
  // whatever was in flight when the loop ended, so the identity must
  // close exactly here too.
  if (ledger_ != nullptr) NBCLOS_ASSERT(credit_conservation_holds());
  if constexpr (obs::kEnabled) {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    flush_obs(wall.count());
    span.arg("cycles", static_cast<double>(now_));
    span.arg("delivered", static_cast<double>(delivered_packets_));
    span.arg("rate", config_.injection_rate);
  }
  return result;
}

void FlowSim::flush_obs(double wall_seconds) {
  if (!obs::enabled()) return;
  auto& m = obs::metrics();
  m.counter("flow.runs").add(1);
  m.counter("flow.cycles").add(now_);
  m.counter("flow.packets.injected").add(injected_);
  m.counter("flow.packets.delivered").add(delivered_packets_);
  m.counter("flow.packets.dropped").add(dropped_);
  m.counter("flow.route.lookups").add(route_lookups_);
  m.counter("flow.stall.credit_cycles").add(credit_stall_cycles_);
  m.counter("flow.stall.vc_cycles").add(vc_stall_cycles_);
  if (deadlocked_) m.counter("flow.deadlocks").add(1);
  std::uint64_t busy_total = 0;
  for (const auto b : link_busy_flits_) busy_total += b;
  m.counter("flow.flits.transmitted").add(busy_total);
  m.gauge("flow.buffer.peak_flits")
      .set(static_cast<std::int64_t>(pool_.peak_switch_flits()));
  m.gauge("flow.buffer.pool_bytes")
      .set(static_cast<std::int64_t>(pool_.bytes()));
  for (std::uint32_t v = 0; v < config_.vcs; ++v) {
    m.gauge("flow.vc.peak_flits." + std::to_string(v))
        .set(static_cast<std::int64_t>(peak_per_vc_[v]));
  }
  m.counter("flow.wall_us")
      .add(static_cast<std::uint64_t>(wall_seconds * 1e6));
}

ArenaStats FlowSim::arena_stats() const {
  ArenaStats stats;
  stats.flit_arena_bytes = pool_.bytes();
  stats.packet_arena_bytes = packets_.bytes();
  stats.resident_slots = pool_.resident_slots();
  stats.peak_slots = pool_.peak_slots();
  stats.spill_bytes = pool_.spill_bytes() + packets_.spill_bytes();
  return stats;
}

std::vector<FlowResult> flow_load_sweep(
    const std::shared_ptr<const RouteSource>& routes,
    const sim::TrafficPattern& traffic, const FlowConfig& base,
    const std::vector<double>& rates, ThreadPool* pool) {
  std::vector<FlowResult> results(rates.size());
  obs::ScopedSpan sweep_span("flow.load_sweep", "sweep");
  sweep_span.arg("rates", static_cast<double>(rates.size()));
  const auto run_at = [&](std::size_t i) {
    FlowConfig config = base;
    config.injection_rate = rates[i];
    FlowSim sim(routes, traffic, config);
    results[i] = sim.run();
  };
  if (pool != nullptr && rates.size() > 1) {
    pool->parallel_for(0, rates.size(), run_at);
  } else {
    for (std::size_t i = 0; i < rates.size(); ++i) run_at(i);
  }
  return results;
}

std::vector<FlowResult> flow_load_sweep(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const FlowConfig& base,
    const std::vector<double>& rates, ThreadPool* pool) {
  return flow_load_sweep(
      std::static_pointer_cast<const RouteSource>(
          std::make_shared<const CacheRouteSource>(routes)),
      traffic, base, rates, pool);
}

}  // namespace nbclos::flow
