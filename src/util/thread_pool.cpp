#include "nbclos/util/thread_pool.hpp"

#include <algorithm>

#include "nbclos/obs/metrics.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    NBCLOS_REQUIRE(!stopping_, "pool is shutting down");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(begin, end,
                  [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) fn(i);
                  });
}

void ThreadPool::parallel_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const std::size_t chunks = std::min(total, thread_count());
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;
  std::size_t cursor = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    const std::size_t lo = cursor;
    const std::size_t hi = cursor + size;
    cursor = hi;
    submit([&fn, c, lo, hi] { fn(c, lo, hi); });
  }
  NBCLOS_ASSERT(cursor == end);
  wait_idle();
}

void ThreadPool::worker_loop() {
  // Occupancy gauge shared by every pool in the process: how many workers
  // are inside a task right now (max() gives the high-water mark).  Tasks
  // here are coarse — whole simulations or verification shards — so two
  // gauge updates per task cost nothing measurable.
  auto& occupancy = obs::metrics().gauge("threadpool.active");
  auto& executed = obs::metrics().counter("threadpool.tasks");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    occupancy.add(1);
    task();
    active_.fetch_sub(1, std::memory_order_relaxed);
    occupancy.add(-1);
    executed.add(1);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace nbclos
