#include "nbclos/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "nbclos/util/check.hpp"

namespace nbclos {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NBCLOS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  NBCLOS_REQUIRE(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << '+';
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left
         << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string versus(double measured, double paper, int precision) {
  return format_double(measured, precision) + " (paper: " +
         format_double(paper, precision) + ")";
}

}  // namespace nbclos
