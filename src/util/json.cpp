#include "nbclos/util/json.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "nbclos/util/check.hpp"

namespace nbclos {

void write_json_string(std::ostream& out, std::string_view text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf.data();
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json_double(std::ostream& out, double number) {
  if (!std::isfinite(number)) {
    out << "null";
    return;
  }
  // std::to_chars emits the shortest string that round-trips, so every
  // emitter in the repo formats doubles identically.
  std::array<char, 32> buf{};
  const auto result =
      std::to_chars(buf.data(), buf.data() + buf.size(), number);
  NBCLOS_ASSERT(result.ec == std::errc());
  out.write(buf.data(), result.ptr - buf.data());
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  *out_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    for (int s = 0; s < indent_; ++s) *out_ << ' ';
  }
}

void JsonWriter::begin_value() {
  if (stack_.empty()) {
    NBCLOS_REQUIRE(!root_written_, "JsonWriter: two top-level values");
    root_written_ = true;
    return;
  }
  Level& top = stack_.back();
  if (top.scope == Scope::kObject) {
    NBCLOS_REQUIRE(top.key_pending,
                   "JsonWriter: object value without a preceding key()");
    top.key_pending = false;
    return;  // comma/indent were handled by key()
  }
  if (top.has_items) *out_ << ',';
  newline_indent();
  top.has_items = true;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  NBCLOS_REQUIRE(!stack_.empty() && stack_.back().scope == Scope::kObject,
                 "JsonWriter: key() outside an object");
  Level& top = stack_.back();
  NBCLOS_REQUIRE(!top.key_pending, "JsonWriter: key() after key()");
  if (top.has_items) *out_ << ',';
  newline_indent();
  top.has_items = true;
  top.key_pending = true;
  write_json_string(*out_, name);
  *out_ << ':';
  if (indent_ > 0) *out_ << ' ';
  return *this;
}

void JsonWriter::open(Scope scope, char bracket) {
  begin_value();
  *out_ << bracket;
  stack_.push_back(Level{scope, false, false});
}

void JsonWriter::close(Scope scope, char bracket) {
  NBCLOS_REQUIRE(!stack_.empty() && stack_.back().scope == scope &&
                     !stack_.back().key_pending,
                 "JsonWriter: mismatched close");
  const bool had_items = stack_.back().has_items;
  stack_.pop_back();
  if (had_items) newline_indent();
  *out_ << bracket;
  if (stack_.empty() && indent_ > 0) *out_ << '\n';
}

JsonWriter& JsonWriter::begin_object() {
  open(Scope::kObject, '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close(Scope::kObject, '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open(Scope::kArray, '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close(Scope::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  write_json_string(*out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  *out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  begin_value();
  write_json_double(*out_, number);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_value();
  *out_ << number;
  return *this;
}

bool JsonWriter::complete() const { return stack_.empty() && root_written_; }

}  // namespace nbclos
