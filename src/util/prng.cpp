#include "nbclos/util/prng.hpp"

#ifdef __SIZEOF_INT128__
__extension__ typedef unsigned __int128 nbclos_uint128;
#else
#error "xoshiro bounded draw requires 128-bit multiply"
#endif

namespace nbclos {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded generation with full rejection,
  // giving an exactly uniform result for any bound > 0.
  std::uint64_t x = (*this)();
  nbclos_uint128 m = static_cast<nbclos_uint128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<nbclos_uint128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace nbclos
