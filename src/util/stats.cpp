#include "nbclos/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "nbclos/util/check.hpp"

namespace nbclos {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  NBCLOS_REQUIRE(hi > lo, "histogram range must be non-empty");
  NBCLOS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  std::size_t idx = 0;
  if (x >= hi_) {
    idx = counts_.size() - 1;
  } else if (x > lo_) {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::quantile(double q) const {
  NBCLOS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto c = static_cast<double>(counts_[i]);
    if (cumulative + c >= target) {
      const double frac = c > 0.0 ? (target - cumulative) / c : 0.0;
      return bin_lo(i) + frac * width_;
    }
    cumulative += c;
  }
  return hi_;
}

QuantileHistogram::QuantileHistogram(std::uint64_t max_value,
                                     std::size_t max_bins)
    : width_(max_value / max_bins + 1),
      counts_(static_cast<std::size_t>(max_value / (max_value / max_bins + 1)) +
                  1,
              0) {
  NBCLOS_REQUIRE(max_bins > 0, "histogram needs at least one bucket");
}

void QuantileHistogram::add(std::uint64_t value) noexcept {
  add(value, 1);
}

void QuantileHistogram::add(std::uint64_t value,
                            std::uint64_t weight) noexcept {
  const auto idx = static_cast<std::size_t>(value / width_);
  auto& bucket = counts_[std::min(idx, counts_.size() - 1)];
  // Saturate instead of wrapping: a wrapped count would silently corrupt
  // every later quantile; a pinned one merely loses resolution at the
  // extreme (tested in tests/util/test_stats.cpp).
  bucket += std::min(weight, UINT64_MAX - bucket);
  total_ += std::min(weight, UINT64_MAX - total_);
}

void QuantileHistogram::merge(const QuantileHistogram& other) {
  NBCLOS_REQUIRE(width_ == other.width_ &&
                     counts_.size() == other.counts_.size(),
                 "cannot merge histograms with different geometry");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    auto& bucket = counts_[i];
    bucket += std::min(other.counts_[i], UINT64_MAX - bucket);
  }
  total_ += std::min(other.total_, UINT64_MAX - total_);
}

double QuantileHistogram::quantile(double q) const {
  NBCLOS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return 0.0;
  // double(total_ - 1) rounds UP to 2^64 when the count is near
  // UINT64_MAX, and casting that back would overflow — clamp first.
  const double target = q * static_cast<double>(total_ - 1);
  const auto rank = target >= static_cast<double>(total_ - 1)
                        ? total_ - 1
                        : static_cast<std::uint64_t>(target);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += std::min(counts_[i], UINT64_MAX - cumulative);
    if (cumulative > rank) {
      return static_cast<double>(i * width_);
    }
  }
  return static_cast<double>((counts_.size() - 1) * width_);
}

PowerFit fit_power_law(const std::vector<double>& x,
                       const std::vector<double>& y) {
  NBCLOS_REQUIRE(x.size() == y.size(), "x/y length mismatch");
  NBCLOS_REQUIRE(x.size() >= 2, "need at least two points");
  const auto count = static_cast<double>(x.size());
  double sum_lx = 0.0;
  double sum_ly = 0.0;
  double sum_lxly = 0.0;
  double sum_lx2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    NBCLOS_REQUIRE(x[i] > 0.0 && y[i] > 0.0, "power fit needs positive data");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sum_lx += lx;
    sum_ly += ly;
    sum_lxly += lx * ly;
    sum_lx2 += lx * lx;
  }
  const double denom = count * sum_lx2 - sum_lx * sum_lx;
  NBCLOS_REQUIRE(denom != 0.0, "degenerate x values");
  const double b = (count * sum_lxly - sum_lx * sum_ly) / denom;
  const double log_a = (sum_ly - b * sum_lx) / count;

  // R^2 in log space.
  const double mean_ly = sum_ly / count;
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double ly = std::log(y[i]);
    const double pred = log_a + b * std::log(x[i]);
    ss_tot += (ly - mean_ly) * (ly - mean_ly);
    ss_res += (ly - pred) * (ly - pred);
  }
  const double r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return PowerFit{std::exp(log_a), b, r2};
}

}  // namespace nbclos
