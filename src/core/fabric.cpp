#include "nbclos/core/fabric.hpp"

#include "nbclos/analysis/contention.hpp"

namespace nbclos {

namespace {

FtreeParams fabric_params(std::uint32_t n, std::optional<std::uint32_t> r) {
  NBCLOS_REQUIRE(n >= 2, "fabric needs n >= 2");
  const std::uint64_t m = std::uint64_t{n} * n;
  const std::uint64_t radix = n + m;
  return FtreeParams{n, narrow<std::uint32_t>(m),
                     r.value_or(narrow<std::uint32_t>(radix))};
}

}  // namespace

NonblockingFabric::NonblockingFabric(std::uint32_t n,
                                     std::optional<std::uint32_t> r)
    : ftree_(fabric_params(n, r)), routing_(ftree_) {}

bool NonblockingFabric::certify() const {
  return is_nonblocking_single_path(routing_);
}

VerifyResult NonblockingFabric::verify_random(std::uint64_t trials,
                                              std::uint64_t seed) const {
  Xoshiro256 rng(seed);
  return ::nbclos::verify_random(ftree_, as_pattern_router(routing_), trials,
                                 rng);
}

}  // namespace nbclos
