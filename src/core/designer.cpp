#include "nbclos/core/designer.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos {

TwoLevelDesign two_level_design(std::uint32_t n) {
  NBCLOS_REQUIRE(n >= 2, "design needs n >= 2");
  const std::uint64_t n64 = n;
  TwoLevelDesign design;
  design.n = n;
  design.switch_radix = narrow<std::uint32_t>(n64 + n64 * n64);
  design.params = FtreeParams{/*n=*/n, /*m=*/narrow<std::uint32_t>(n64 * n64),
                              /*r=*/design.switch_radix};
  design.ports = n64 * n64 * n64 + n64 * n64;       // r * n = (n^2+n) n
  design.switches = 2 * n64 * n64 + n64;            // r bottoms + n^2 tops
  // Bidirectional links: one per leaf plus r*m between the levels.
  design.links = design.ports + std::uint64_t{design.params.r} * design.params.m;
  return design;
}

std::optional<TwoLevelDesign> design_for_radix(std::uint32_t radix) {
  std::uint32_t best_n = 0;
  for (std::uint32_t n = 2;; ++n) {
    const std::uint64_t needed = std::uint64_t{n} + std::uint64_t{n} * n;
    if (needed > radix) break;
    best_n = n;
  }
  if (best_n == 0) return std::nullopt;
  return two_level_design(best_n);
}

RecursiveDesign recursive_design(std::uint32_t n, std::uint32_t levels) {
  NBCLOS_REQUIRE(n >= 2, "design needs n >= 2");
  NBCLOS_REQUIRE(levels >= 2, "recursive design starts at two levels");
  const auto base = two_level_design(n);
  std::uint64_t ports = base.ports;
  std::uint64_t switches = base.switches;
  const std::uint64_t n64 = n;
  for (std::uint32_t level = 3; level <= levels; ++level) {
    // P(L+1) = n P(L); S(L+1) = P(L) + n^2 S(L).
    NBCLOS_REQUIRE(switches <= UINT64_MAX / (n64 * n64) - ports / (n64 * n64) - 1,
                   "switch count overflow");
    const std::uint64_t next_switches = ports + n64 * n64 * switches;
    NBCLOS_REQUIRE(ports <= UINT64_MAX / n64, "port count overflow");
    ports *= n64;
    switches = next_switches;
  }
  RecursiveDesign design;
  design.n = n;
  design.levels = levels;
  design.switch_radix = base.switch_radix;
  design.ports = ports;
  design.switches = switches;
  return design;
}

std::vector<TwoLevelDesign> enumerate_designs(std::uint32_t max_radix) {
  std::vector<TwoLevelDesign> designs;
  for (std::uint32_t n = 2;; ++n) {
    const std::uint64_t radix = std::uint64_t{n} + std::uint64_t{n} * n;
    if (radix > max_radix) break;
    designs.push_back(two_level_design(n));
  }
  return designs;
}

}  // namespace nbclos
