#include "nbclos/core/multilevel.hpp"

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

std::uint32_t MultiLevelFabric::Block::attach(std::uint32_t port,
                                              std::uint32_t n) const {
  NBCLOS_REQUIRE(port < ports, "block port out of range");
  if (level == 1) return switch_vertex;
  return bottom[port / n];
}

void MultiLevelFabric::Block::route_internal(std::uint32_t in_port,
                                             std::uint32_t out_port,
                                             std::uint32_t n,
                                             ChannelPath& out) const {
  NBCLOS_REQUIRE(in_port < ports && out_port < ports,
                 "block port out of range");
  if (level == 1) return;  // straight through the single switch
  const std::uint32_t qin = in_port / n;
  const std::uint32_t qout = out_port / n;
  if (qin == qout) return;  // turns around at the shared bottom switch
  // The Theorem 3 rule, applied at this level: sub-block (i, j) where i
  // and j are the local port indices within the bottom switches.
  const std::uint32_t i = in_port % n;
  const std::uint32_t j = out_port % n;
  const std::uint32_t t = i * n + j;
  out.push_back(up[t][qin]);
  subs[t]->route_internal(qin, qout, n, out);
  out.push_back(down[t][qout]);
}

MultiLevelFabric::MultiLevelFabric(std::uint32_t n, std::uint32_t levels)
    : n_(n), levels_(levels) {
  NBCLOS_REQUIRE(n >= 2, "multi-level fabric needs n >= 2");
  NBCLOS_REQUIRE(levels >= 2, "multi-level fabric starts at two levels");
  // P(levels) = n^(levels+1) + n^levels.
  std::uint64_t ports = std::uint64_t{n} * n + n;  // P(1)
  for (std::uint32_t k = 2; k <= levels; ++k) {
    ports *= n;
    NBCLOS_REQUIRE(ports <= (1ULL << 20), "fabric too large");
  }
  ports_ = static_cast<std::uint32_t>(ports);

  // Terminals first so leaf index == vertex id.
  for (std::uint32_t p = 0; p < ports_; ++p) {
    net_.add_vertex(VertexKind::kTerminal, 0, p);
  }
  root_ = build_block(levels);
  NBCLOS_ASSERT(root_->ports == ports_);
  leaf_up_.resize(ports_);
  leaf_down_.resize(ports_);
  for (std::uint32_t p = 0; p < ports_; ++p) {
    const auto at = root_->attach(p, n_);
    leaf_up_[p] = net_.add_channel(p, at);
    leaf_down_[p] = net_.add_channel(at, p);
  }
  net_.finalize();
}

std::unique_ptr<MultiLevelFabric::Block> MultiLevelFabric::build_block(
    std::uint32_t level) {
  auto block = std::make_unique<Block>();
  block->level = level;
  if (level == 1) {
    block->ports = n_ * n_ + n_;
    block->switch_vertex = net_.add_vertex(VertexKind::kSwitch, 1, 0);
    ++switch_count_;
    return block;
  }
  // n^2 sub-blocks of the previous level.
  for (std::uint32_t t = 0; t < n_ * n_; ++t) {
    block->subs.push_back(build_block(level - 1));
  }
  const std::uint32_t sub_ports = block->subs.front()->ports;
  block->ports = sub_ports * n_;
  // One bottom switch per sub-block port; bottom switch q owns external
  // ports [q*n, q*n + n) and one uplink into every sub-block at sub-port q.
  block->bottom.resize(sub_ports);
  for (std::uint32_t q = 0; q < sub_ports; ++q) {
    block->bottom[q] = net_.add_vertex(VertexKind::kSwitch, level, q);
    ++switch_count_;
  }
  block->up.assign(n_ * n_, std::vector<std::uint32_t>(sub_ports, 0));
  block->down.assign(n_ * n_, std::vector<std::uint32_t>(sub_ports, 0));
  for (std::uint32_t t = 0; t < n_ * n_; ++t) {
    for (std::uint32_t q = 0; q < sub_ports; ++q) {
      const auto sub_attach = block->subs[t]->attach(q, n_);
      block->up[t][q] = net_.add_channel(block->bottom[q], sub_attach);
      block->down[t][q] = net_.add_channel(sub_attach, block->bottom[q]);
    }
  }
  return block;
}

ChannelPath MultiLevelFabric::route(SDPair sd) const {
  NBCLOS_REQUIRE(sd.src.value < ports_ && sd.dst.value < ports_,
                 "leaf id out of range");
  NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
  ChannelPath path;
  path.push_back(leaf_up_[sd.src.value]);
  root_->route_internal(sd.src.value, sd.dst.value, n_, path);
  path.push_back(leaf_down_[sd.dst.value]);
  return path;
}

bool MultiLevelFabric::certify() const {
  const auto violations = network_lemma1_audit(
      net_, [this](SDPair sd) { return route(sd); });
  return violations.empty();
}

bool MultiLevelFabric::verify_random(std::uint64_t trials,
                                     std::uint64_t seed) const {
  Xoshiro256 rng(seed);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto pattern = random_permutation(ports_, rng);
    ChannelLoadMap map(net_);
    for (const auto sd : pattern) map.add_path(route(sd));
    if (!map.contention_free()) return false;
  }
  return true;
}

}  // namespace nbclos
