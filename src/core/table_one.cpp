#include "nbclos/core/table_one.hpp"

#include "nbclos/topology/mport_ntree.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

TableOneRow table_one_row(std::uint32_t radix) {
  NBCLOS_REQUIRE(radix >= 6, "need radix >= 6 (n >= 2)");
  TableOneRow row;
  row.switch_radix = radix;

  const auto design = design_for_radix(radix);
  NBCLOS_ASSERT(design.has_value());
  row.nb_switches = design->switches;
  row.nb_ports = design->ports;

  if (radix >= 4 && radix % 2 == 0) {
    const auto ft = mport_ntree_size(radix, 2);
    row.ft_switches = ft.switch_count;
    row.ft_ports = ft.node_count;
  }
  return row;
}

std::vector<TableOneRow> table_one_published() {
  // The printed values from the paper's Table I.  Rows: 20, 30, 42-port
  // switches.  Two cells disagree with the paper's own formulae
  // (2n^2+n switches, m^2/2 ports): the 42-port row prints 88 switches
  // where 2*6^2+6 = 78, and FT(42,2) prints 884 ports where 42^2/2 = 882.
  struct Published {
    std::uint32_t radix;
    std::uint64_t nb_switches, nb_ports, ft_switches, ft_ports;
  };
  constexpr Published kPublished[] = {
      {20, 36, 80, 30, 200},
      {30, 55, 150, 45, 450},
      {42, 88, 252, 63, 884},
  };
  std::vector<TableOneRow> rows;
  for (const auto& pub : kPublished) {
    auto row = table_one_row(pub.radix);
    row.paper_nb_switches = pub.nb_switches;
    row.paper_nb_ports = pub.nb_ports;
    row.paper_ft_switches = pub.ft_switches;
    row.paper_ft_ports = pub.ft_ports;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace nbclos
