#include "nbclos/routing/multipath.hpp"

#include <algorithm>
#include <unordered_set>

namespace nbclos {

std::string to_string(SpreadPolicy policy) {
  switch (policy) {
    case SpreadPolicy::kRoundRobin: return "round-robin";
    case SpreadPolicy::kRandom: return "random";
    case SpreadPolicy::kHash: return "hash";
  }
  return "unknown";
}

MultipathObliviousRouting::MultipathObliviousRouting(const FoldedClos& ft,
                                                     std::uint32_t width,
                                                     SpreadPolicy policy,
                                                     std::uint64_t seed,
                                                     CandidateBase base)
    : ftree_(&ft), width_(width), policy_(policy), base_(base), rng_(seed) {
  NBCLOS_REQUIRE(width >= 1, "spread width must be >= 1");
  NBCLOS_REQUIRE(width <= ft.m(), "spread width exceeds top switch count");
  if (base == CandidateBase::kYuan) {
    NBCLOS_REQUIRE(std::uint64_t{ft.m()} >= std::uint64_t{ft.n()} * ft.n(),
                   "Yuan candidate base needs m >= n^2");
  }
}

std::string MultipathObliviousRouting::name() const {
  return std::string("multipath-") +
         (base_ == CandidateBase::kYuan ? "yuan-" : "") + to_string(policy_) +
         "-w" + std::to_string(width_);
}

std::vector<TopId> MultipathObliviousRouting::candidates(SDPair sd) const {
  NBCLOS_REQUIRE(ftree_->needs_top(sd), "direct pairs have no candidates");
  std::vector<TopId> out;
  out.reserve(width_);
  const std::uint32_t base =
      base_ == CandidateBase::kYuan
          ? ftree_->local_of(sd.src) * ftree_->n() + ftree_->local_of(sd.dst)
          : (sd.src.value + sd.dst.value) % ftree_->m();
  for (std::uint32_t k = 0; k < width_; ++k) {
    out.push_back(TopId{(base + k) % ftree_->m()});
  }
  return out;
}

FtreePath MultipathObliviousRouting::path_for_packet(
    SDPair sd, std::uint64_t packet_index) {
  NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
  if (!ftree_->needs_top(sd)) return ftree_->direct_path(sd);
  const auto cands = candidates(sd);
  std::size_t pick = 0;
  switch (policy_) {
    case SpreadPolicy::kRoundRobin:
      pick = static_cast<std::size_t>(packet_index % cands.size());
      break;
    case SpreadPolicy::kRandom:
      pick = static_cast<std::size_t>(rng_.below(cands.size()));
      break;
    case SpreadPolicy::kHash: {
      // SplitMix64 finalizer over (src, dst, packet_index).
      SplitMix64 h((std::uint64_t{sd.src.value} << 32) ^ sd.dst.value ^
                   (packet_index * 0x9E3779B97F4A7C15ULL));
      pick = static_cast<std::size_t>(h.next() % cands.size());
      break;
    }
  }
  return ftree_->cross_path(sd, cands[pick]);
}

std::vector<LinkId> MultipathObliviousRouting::link_footprint(SDPair sd) const {
  NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
  std::vector<LinkId> links;
  if (!ftree_->needs_top(sd)) {
    const auto path = ftree_->direct_path(sd);
    return ftree_->links_of(path);
  }
  std::unordered_set<std::uint32_t> seen;
  for (const auto top : candidates(sd)) {
    for (const auto link : ftree_->links_of(ftree_->cross_path(sd, top))) {
      if (seen.insert(link.value).second) links.push_back(link);
    }
  }
  return links;
}

}  // namespace nbclos
