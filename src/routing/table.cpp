#include "nbclos/routing/table.hpp"

#include <algorithm>

namespace nbclos {

void RoutingTable::set(SDPair sd, TopId top) {
  NBCLOS_REQUIRE(ftree_->needs_top(sd), "direct pairs are not stored");
  NBCLOS_REQUIRE(top.value < ftree_->m(), "top switch out of range");
  auto& entry = entries_[index(sd)];
  if (entry == kUnassigned) ++assigned_;
  entry = top.value;
}

FtreePath RoutingTable::path(SDPair sd) const {
  if (!ftree_->needs_top(sd)) return ftree_->direct_path(sd);
  const auto top = lookup(sd);
  NBCLOS_REQUIRE(top.has_value(), "no route recorded for SD pair");
  return ftree_->cross_path(sd, *top);
}

RoutingTable RoutingTable::materialize(const SinglePathRouting& routing) {
  const auto& ft = routing.ftree();
  RoutingTable table(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (s == d || !ft.needs_top(sd)) continue;
      table.set(sd, routing.route(sd).top);
    }
  }
  return table;
}

RoutingTable RoutingTable::from_paths(const FoldedClos& ftree,
                                      const std::vector<FtreePath>& paths) {
  RoutingTable table(ftree);
  for (const auto& p : paths) {
    if (!p.direct) table.set(p.sd, p.top);
  }
  return table;
}

std::uint32_t RoutingTable::top_switches_used() const {
  std::uint32_t used = 0;
  for (const auto top : entries_) {
    if (top != kUnassigned) used = std::max(used, top + 1);
  }
  return used;
}

}  // namespace nbclos
