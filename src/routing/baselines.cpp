#include "nbclos/routing/baselines.hpp"

namespace nbclos {

RandomFixedRouting::RandomFixedRouting(const FoldedClos& ft,
                                       std::uint64_t seed)
    : SinglePathRouting(ft) {
  const std::uint64_t leafs = ft.leaf_count();
  table_.resize(leafs * leafs, 0);
  Xoshiro256 rng(seed);
  for (std::uint64_t s = 0; s < leafs; ++s) {
    for (std::uint64_t d = 0; d < leafs; ++d) {
      table_[s * leafs + d] = static_cast<std::uint32_t>(rng.below(ft.m()));
    }
  }
}

TopId RandomFixedRouting::top_for(SDPair sd) const {
  const std::uint64_t leafs = ftree().leaf_count();
  return TopId{table_[std::uint64_t{sd.src.value} * leafs + sd.dst.value]};
}

}  // namespace nbclos
