#include "nbclos/routing/infiniband.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos {

InfinibandFabric::InfinibandFabric(const FoldedClos& ftree)
    : ftree_(&ftree), map_{ftree.params()} {
  NBCLOS_REQUIRE(std::uint64_t{ftree.m()} >= std::uint64_t{ftree.n()} * ftree.n(),
                 "multiple-LID Theorem 3 programming needs m >= n^2");
  const std::uint32_t n = ftree.n();
  const std::uint32_t lids = lid_count();

  // Bottom-switch LFTs: for LID (d, i) at switch v —
  //   * d attached here: deliver on the leaf-down port;
  //   * otherwise climb to top switch (i, j = local(d)).
  lft_bottom_.assign(ftree.bottom_count(),
                     std::vector<std::uint32_t>(lids, 0));
  for (std::uint32_t v = 0; v < ftree.bottom_count(); ++v) {
    for (std::uint32_t lid = 0; lid < lids; ++lid) {
      const LeafId d{lid / n};
      const std::uint32_t i = lid % n;
      if (ftree.switch_of(d).value == v) {
        lft_bottom_[v][lid] = ftree.leaf_down_link(d).value;
      } else {
        const TopId top{i * n + ftree.local_of(d)};
        lft_bottom_[v][lid] = ftree.up_link(BottomId{v}, top).value;
      }
    }
  }
  // Top-switch LFTs: descend toward the destination's bottom switch.
  lft_top_.assign(ftree.top_count(), std::vector<std::uint32_t>(lids, 0));
  for (std::uint32_t t = 0; t < ftree.top_count(); ++t) {
    for (std::uint32_t lid = 0; lid < lids; ++lid) {
      const LeafId d{lid / n};
      lft_top_[t][lid] = ftree.down_link(TopId{t}, ftree.switch_of(d)).value;
    }
  }
}

Lid InfinibandFabric::lid_for(SDPair sd) const {
  NBCLOS_REQUIRE(sd.src.value < ftree_->leaf_count() &&
                     sd.dst.value < ftree_->leaf_count(),
                 "leaf id out of range");
  return Lid{sd.dst.value * ftree_->n() + ftree_->local_of(sd.src)};
}

LeafId InfinibandFabric::leaf_of(Lid lid) const {
  NBCLOS_REQUIRE(lid.value < lid_count(), "LID out of range");
  return LeafId{lid.value / ftree_->n()};
}

std::uint32_t InfinibandFabric::index_of(Lid lid) const {
  NBCLOS_REQUIRE(lid.value < lid_count(), "LID out of range");
  return lid.value % ftree_->n();
}

std::uint32_t InfinibandFabric::forward(std::uint32_t vertex, Lid lid) const {
  NBCLOS_REQUIRE(lid.value < lid_count(), "LID out of range");
  if (map_.is_bottom(vertex)) {
    return lft_bottom_[map_.bottom_of(vertex).value][lid.value];
  }
  NBCLOS_REQUIRE(map_.is_top(vertex), "vertex is not a switch");
  return lft_top_[map_.top_of(vertex).value][lid.value];
}

ChannelPath InfinibandFabric::forward_path(SDPair sd) const {
  NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
  const Lid lid = lid_for(sd);
  ChannelPath path;
  path.push_back(ftree_->leaf_up_link(sd.src).value);
  std::uint32_t vertex = map_.bottom(ftree_->switch_of(sd.src));
  // Forward by LFT until the packet leaves on a leaf-down channel.
  for (int hop = 0; hop < 4; ++hop) {
    const auto channel = forward(vertex, lid);
    path.push_back(channel);
    if (ftree_->kind_of(LinkId{channel}) == LinkKind::kLeafDown) return path;
    // Next vertex per the ftree channel layout.
    const auto kind = ftree_->kind_of(LinkId{channel});
    if (kind == LinkKind::kUp) {
      const std::uint32_t rel = channel - ftree_->leaf_count();
      vertex = map_.top(TopId{rel % ftree_->m()});
    } else {
      NBCLOS_ASSERT(kind == LinkKind::kDown);
      const std::uint32_t rel =
          channel - ftree_->leaf_count() - ftree_->r() * ftree_->m();
      vertex = map_.bottom(BottomId{rel % ftree_->r()});
    }
  }
  NBCLOS_ASSERT(false);  // a well-formed LFT always delivers within 3 hops
  return path;
}

}  // namespace nbclos
