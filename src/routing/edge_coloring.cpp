#include "nbclos/routing/edge_coloring.hpp"

#include <algorithm>
#include <unordered_set>

#include "nbclos/util/check.hpp"

namespace nbclos {

std::vector<std::uint32_t> bipartite_edge_coloring(
    std::uint32_t left_count, std::uint32_t right_count,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  // Compute the maximum degree — the number of colors we are allowed.
  std::vector<std::uint32_t> deg_left(left_count, 0);
  std::vector<std::uint32_t> deg_right(right_count, 0);
  for (const auto& [u, v] : edges) {
    NBCLOS_REQUIRE(u < left_count && v < right_count, "edge out of range");
    ++deg_left[u];
    ++deg_right[v];
  }
  std::uint32_t max_degree = 1;
  for (const auto d : deg_left) max_degree = std::max(max_degree, d);
  for (const auto d : deg_right) max_degree = std::max(max_degree, d);

  constexpr std::int64_t kNone = -1;
  // color_at[vertex][c] = edge index colored c at that vertex, or kNone.
  // Left vertices occupy rows [0, left_count), right rows after that.
  const std::size_t rows = std::size_t{left_count} + right_count;
  std::vector<std::vector<std::int64_t>> color_at(
      rows, std::vector<std::int64_t>(max_degree, kNone));
  std::vector<std::uint32_t> color(edges.size(), 0);

  const auto first_free = [&](std::size_t row) {
    for (std::uint32_t c = 0; c < max_degree; ++c) {
      if (color_at[row][c] == kNone) return c;
    }
    NBCLOS_ASSERT(false);  // degree bound guarantees a free color
    return max_degree;
  };
  const auto left_row = [](std::uint32_t u) { return std::size_t{u}; };
  const auto right_row = [left_count](std::uint32_t v) {
    return std::size_t{left_count} + v;
  };

  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::size_t u = left_row(edges[e].first);
    const std::size_t v = right_row(edges[e].second);
    const std::uint32_t a = first_free(u);
    const std::uint32_t b = first_free(v);
    if (a != b && color_at[v][a] != kNone) {
      // Kempe chain: walk the a/b alternating path starting at v, then
      // swap colors a<->b along it.  The chain cannot reach u (classical
      // König argument: u is missing color a, and the chain enters left
      // vertices only on a-colored edges).
      std::vector<std::size_t> chain_edges;
      std::size_t vertex = v;
      std::uint32_t want = a;
      while (color_at[vertex][want] != kNone) {
        const auto idx = static_cast<std::size_t>(color_at[vertex][want]);
        chain_edges.push_back(idx);
        const std::size_t lu = left_row(edges[idx].first);
        const std::size_t rv = right_row(edges[idx].second);
        vertex = (vertex == lu) ? rv : lu;
        NBCLOS_ASSERT(vertex != u);  // König: chain never hits u
        want = (want == a) ? b : a;
      }
      // Two-pass flip so slot writes never clobber a slot we still need.
      for (const auto idx : chain_edges) {
        const std::uint32_t old_color = color[idx];
        color_at[left_row(edges[idx].first)][old_color] = kNone;
        color_at[right_row(edges[idx].second)][old_color] = kNone;
      }
      for (const auto idx : chain_edges) {
        const std::uint32_t new_color = (color[idx] == a) ? b : a;
        color[idx] = new_color;
        color_at[left_row(edges[idx].first)][new_color] =
            static_cast<std::int64_t>(idx);
        color_at[right_row(edges[idx].second)][new_color] =
            static_cast<std::int64_t>(idx);
      }
      NBCLOS_ASSERT(color_at[v][a] == kNone);
      NBCLOS_ASSERT(color_at[u][a] == kNone);
    }
    color[e] = a;
    color_at[u][a] = static_cast<std::int64_t>(e);
    color_at[v][a] = static_cast<std::int64_t>(e);
  }
  return color;
}

std::vector<FtreePath> CentralizedRearrangeableRouter::route(
    const std::vector<SDPair>& permutation) const {
  const auto& ft = *ftree_;
  // Validate the permutation property (Definition 1).
  std::unordered_set<std::uint32_t> sources;
  std::unordered_set<std::uint32_t> destinations;
  for (const auto sd : permutation) {
    NBCLOS_REQUIRE(sd.src.value < ft.leaf_count() &&
                       sd.dst.value < ft.leaf_count(),
                   "leaf id out of range");
    NBCLOS_REQUIRE(sources.insert(sd.src.value).second,
                   "pattern reuses a source: not a permutation");
    NBCLOS_REQUIRE(destinations.insert(sd.dst.value).second,
                   "pattern reuses a destination: not a permutation");
  }

  // Bipartite multigraph over bottom switches; edges = cross pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  std::vector<std::size_t> edge_to_pattern;
  for (std::size_t i = 0; i < permutation.size(); ++i) {
    const auto sd = permutation[i];
    NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
    if (!ft.needs_top(sd)) continue;
    edges.emplace_back(ft.switch_of(sd.src).value, ft.switch_of(sd.dst).value);
    edge_to_pattern.push_back(i);
  }
  const auto colors = bipartite_edge_coloring(ft.r(), ft.r(), edges);

  std::vector<std::uint32_t> color_of_pattern(permutation.size(), 0);
  std::vector<bool> is_cross(permutation.size(), false);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    NBCLOS_REQUIRE(colors[e] < ft.m(),
                   "permutation needs more top switches than available");
    color_of_pattern[edge_to_pattern[e]] = colors[e];
    is_cross[edge_to_pattern[e]] = true;
  }
  std::vector<FtreePath> paths;
  paths.reserve(permutation.size());
  for (std::size_t i = 0; i < permutation.size(); ++i) {
    const auto sd = permutation[i];
    paths.push_back(is_cross[i]
                        ? ft.cross_path(sd, TopId{color_of_pattern[i]})
                        : ft.direct_path(sd));
  }
  return paths;
}

}  // namespace nbclos
