#include "nbclos/routing/kary_updown.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos {

KaryTreeRouter::KaryTreeRouter(const Network& net, std::uint32_t k,
                               std::uint32_t h)
    : net_(&net), k_(k), h_(h) {
  NBCLOS_REQUIRE(k >= 2 && h >= 1, "invalid k-ary n-tree parameters");
  std::uint64_t terminals = 1;
  for (std::uint32_t i = 0; i < h; ++i) terminals *= k;
  terminals_ = narrow<std::uint32_t>(terminals);
  per_level_ = terminals_ / k;
  NBCLOS_REQUIRE(net.vertex_count() == terminals_ + h * per_level_,
                 "network does not match k-ary n-tree shape");
}

std::uint32_t KaryTreeRouter::switch_vertex(std::uint32_t level,
                                            std::uint32_t pos) const {
  NBCLOS_ASSERT(level < h_ && pos < per_level_);
  return terminals_ + level * per_level_ + pos;
}

std::uint32_t KaryTreeRouter::channel_between(std::uint32_t from,
                                              std::uint32_t to) const {
  const auto channel = net_->find_channel(from, to);
  NBCLOS_ASSERT(channel.has_value());
  return *channel;
}

std::uint32_t KaryTreeRouter::nca_level(std::uint32_t src,
                                        std::uint32_t dst) const {
  NBCLOS_REQUIRE(src < terminals_ && dst < terminals_, "terminal range");
  const std::uint32_t ws = src / k_;
  const std::uint32_t wd = dst / k_;
  if (ws == wd) return 0;
  if (h_ == 1) return 0;
  const DigitCodec codec(k_, h_ - 1);
  std::uint32_t top = 0;
  for (std::uint32_t i = 0; i < h_ - 1; ++i) {
    if (codec.digit(ws, i) != codec.digit(wd, i)) top = i + 1;
  }
  return top;
}

ChannelPath KaryTreeRouter::route_impl(
    SDPair sd,
    const std::function<std::uint32_t(std::uint32_t)>& up_digit) const {
  NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
  const std::uint32_t src = sd.src.value;
  const std::uint32_t dst = sd.dst.value;
  NBCLOS_REQUIRE(src < terminals_ && dst < terminals_, "terminal range");

  ChannelPath path;
  const std::uint32_t climb = nca_level(src, dst);
  std::uint32_t vertex = switch_vertex(0, src / k_);
  path.push_back(channel_between(src, vertex));
  if (climb > 0) {
    const DigitCodec codec(k_, h_ - 1);
    auto digits = codec.digits(src / k_);
    const auto dest_digits = codec.digits(dst / k_);
    // Ascend: at level l the position digit l is free.
    for (std::uint32_t l = 0; l < climb; ++l) {
      digits[l] = up_digit(l);
      const auto pos = static_cast<std::uint32_t>(codec.compose(digits));
      const auto next = switch_vertex(l + 1, pos);
      path.push_back(channel_between(vertex, next));
      vertex = next;
    }
    // Descend: fix digit l-1 to the destination's digit at each step.
    for (std::uint32_t l = climb; l > 0; --l) {
      digits[l - 1] = dest_digits[l - 1];
      const auto pos = static_cast<std::uint32_t>(codec.compose(digits));
      const auto next = switch_vertex(l - 1, pos);
      path.push_back(channel_between(vertex, next));
      vertex = next;
    }
    NBCLOS_ASSERT(vertex == switch_vertex(0, dst / k_));
  }
  path.push_back(channel_between(vertex, dst));
  return path;
}

ChannelPath KaryTreeRouter::route(SDPair sd) const {
  // Destination-keyed ascent: converge on the destination's digits
  // immediately (the D-mod-K analogue on k-ary n-trees).
  const DigitCodec codec(k_, h_ == 1 ? 1 : h_ - 1);
  const std::uint32_t wd = sd.dst.value / k_;
  return route_impl(sd, [&codec, wd](std::uint32_t l) {
    return codec.digit(wd, l);
  });
}

ChannelPath KaryTreeRouter::route_random(SDPair sd, Xoshiro256& rng) const {
  return route_impl(sd, [this, &rng](std::uint32_t) {
    return static_cast<std::uint32_t>(rng.below(k_));
  });
}

}  // namespace nbclos
