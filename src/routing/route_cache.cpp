#include "nbclos/routing/route_cache.hpp"

#include "nbclos/obs/metrics.hpp"
#include "nbclos/routing/single_path.hpp"

namespace nbclos::routing {

RouteCache::RouteCache(const FoldedClos& ftree, const BuildFn& fn)
    : leafs_(ftree.leaf_count()), links_in_topology_(ftree.link_count()) {
  const std::uint64_t pairs = pair_count();
  // 4 links per cross pair bounds the run array; keep it addressable by
  // the 32-bit CSR offsets.
  NBCLOS_REQUIRE(pairs * FoldedClos::kMaxPathLinks <= UINT32_MAX,
                 "topology too large for 32-bit route-cache offsets");
  offsets_.reserve(pairs + 1);
  flags_.assign(pairs, 0);
  // Cross pairs dominate; reserving the worst case avoids regrowth.
  links_.reserve(static_cast<std::size_t>(pairs) * FoldedClos::kMaxPathLinks);

  std::uint64_t routed = 0;
  FtreePath path;
  LinkId run[FoldedClos::kMaxPathLinks];
  offsets_.push_back(0);
  for (std::uint32_t s = 0; s < leafs_; ++s) {
    for (std::uint32_t d = 0; d < leafs_; ++d) {
      if (s != d) {
        const SDPair sd{LeafId{s}, LeafId{d}};
        const std::uint8_t bits = fn(sd, path);
        flags_[std::size_t{s} * leafs_ + d] = bits;
        if ((bits & kUnroutable) != 0) {
          any_unroutable_ = true;
        } else {
          NBCLOS_ASSERT(path.sd == sd);
          const auto count = ftree.links_into(path, run);
          for (std::uint32_t i = 0; i < count; ++i) {
            links_.push_back(run[i].value);
          }
          ++routed;
        }
      }
      offsets_.push_back(static_cast<std::uint32_t>(links_.size()));
    }
  }
  links_.shrink_to_fit();

  auto& registry = obs::metrics();
  registry.counter("route_cache.builds").add(1);
  registry.counter("route_cache.routes_materialized").add(routed);
  registry.gauge("route_cache.bytes").add(static_cast<std::int64_t>(bytes()));
}

RouteCache RouteCache::materialize(const SinglePathRouting& routing) {
  return RouteCache(routing.ftree(), [&](SDPair sd, FtreePath& path) {
    routing.route_into(sd, path);
    return std::uint8_t{0};
  });
}

void RouteCache::note_lookups(std::uint64_t n) {
  if (n > 0) obs::metrics().counter("route_cache.lookups").add(n);
}

ChannelRouteCache::ChannelRouteCache(const Network& net, const RouteFn& route)
    : net_(&net) {
  // Optional mmap spill for tables that exceed RAM (NBCLOS_MMAP_CACHE).
  if (const auto dir = U32Store::mmap_cache_dir()) {
    offsets_ = U32Store(*dir);
    channels_ = U32Store(*dir);
  }
  const auto terminal_vertices = net.terminals();
  terminals_ = static_cast<std::uint32_t>(terminal_vertices.size());
  terminal_index_.assign(net.vertex_count(), kNotATerminal);
  for (std::uint32_t t = 0; t < terminals_; ++t) {
    terminal_index_[terminal_vertices[t]] = t;
  }

  const std::uint64_t pairs = std::uint64_t{terminals_} * terminals_;
  offsets_.reserve(pairs + 1);
  offsets_.push_back(0);
  for (std::uint32_t s = 0; s < terminals_; ++s) {
    for (std::uint32_t d = 0; d < terminals_; ++d) {
      if (s != d) {
        const auto path = route(SDPair{LeafId{s}, LeafId{d}});
        // Validate chaining exactly like the old per-hop map build: the
        // run must start at the source terminal, chain channel to
        // channel, and end at the destination terminal.
        NBCLOS_REQUIRE(!path.empty(), "route produced an empty path");
        std::uint32_t at = terminal_vertices[s];
        for (const auto c : path) {
          NBCLOS_REQUIRE(c < net.channel_count(), "channel id out of range");
          NBCLOS_REQUIRE(net.channel_src(c) == at,
                         "path channels do not chain");
          channels_.push_back(c);
          at = net.channel_dst(c);
        }
        NBCLOS_REQUIRE(at == terminal_vertices[d],
                       "path does not end at the destination terminal");
      }
      NBCLOS_REQUIRE(channels_.size() <= UINT32_MAX,
                     "network too large for 32-bit route-cache offsets");
      offsets_.push_back(static_cast<std::uint32_t>(channels_.size()));
    }
  }
  channels_.shrink_to_fit();

  auto& registry = obs::metrics();
  registry.counter("route_cache.builds").add(1);
  registry.counter("route_cache.routes_materialized")
      .add(terminals_ > 0 ? pairs - terminals_ : 0);
  registry.gauge("route_cache.bytes").add(static_cast<std::int64_t>(bytes()));
}

std::uint32_t ChannelRouteCache::next_channel_from(std::uint32_t vertex,
                                                   std::uint32_t src,
                                                   std::uint32_t dst) const {
  NBCLOS_REQUIRE(src < terminal_index_.size() && dst < terminal_index_.size(),
                 "terminal vertex out of range");
  const auto s = terminal_index_[src];
  const auto d = terminal_index_[dst];
  NBCLOS_REQUIRE(s != kNotATerminal && d != kNotATerminal,
                 "packet endpoints are not terminals");
  for (const auto c : channels(s, d)) {
    if (net_->channel_src(c) == vertex) return c;
  }
  NBCLOS_REQUIRE(false, "no next hop recorded for packet at this vertex");
  return UINT32_MAX;  // unreachable
}

ShardRouteView::ShardRouteView(const ChannelRouteCache& cache,
                               std::span<const std::uint32_t> vertex_begin,
                               std::uint32_t shard)
    : cache_(&cache), net_(&cache.network()),
      terminals_(cache.terminal_count()), shard_(shard) {
  NBCLOS_REQUIRE(vertex_begin.size() >= 2 && shard + 2 <= vertex_begin.size(),
                 "shard outside the vertex partition");
  const std::uint32_t lo = vertex_begin[shard];
  const std::uint32_t hi = vertex_begin[shard + 1];
  NBCLOS_REQUIRE(lo <= hi && hi <= net_->vertex_count(),
                 "vertex partition boundaries out of range");
  const std::uint64_t pairs = std::uint64_t{terminals_} * terminals_;
  offsets_.reserve(pairs + 1);
  offsets_.push_back(0);
  for (std::uint32_t s = 0; s < terminals_; ++s) {
    for (std::uint32_t d = 0; d < terminals_; ++d) {
      for (const auto c : cache.channels(s, d)) {
        const auto src_vertex = net_->channel_src(c);
        if (src_vertex >= lo && src_vertex < hi) channels_.push_back(c);
      }
      offsets_.push_back(static_cast<std::uint32_t>(channels_.size()));
    }
  }
  channels_.shrink_to_fit();
  obs::metrics()
      .gauge("route_cache.shard." + std::to_string(shard) + ".bytes")
      .set(static_cast<std::int64_t>(bytes()));
}

std::uint32_t ShardRouteView::next_channel_from(std::uint32_t vertex,
                                                std::uint32_t src,
                                                std::uint32_t dst) const {
  const auto s = cache_->terminal_index(src);
  const auto d = cache_->terminal_index(dst);
  NBCLOS_REQUIRE(s != ChannelRouteCache::kNotATerminal &&
                     d != ChannelRouteCache::kNotATerminal,
                 "packet endpoints are not terminals");
  for (const auto c : channels(s, d)) {
    if (net_->channel_src(c) == vertex) return c;
  }
  NBCLOS_REQUIRE(false, "no next hop owned by this shard at this vertex");
  return UINT32_MAX;  // unreachable
}

}  // namespace nbclos::routing
