#include "nbclos/fault/sweep.hpp"

#include <algorithm>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/degraded_routing.hpp"
#include "nbclos/fault/failure_model.hpp"
#include "nbclos/fault/fault_oracle.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos::analysis {

namespace {

/// Per-chunk partial counts, merged additively (order-independent except
/// worst_collisions, which is a max — also order-independent).
struct ChunkCounts {
  std::uint32_t blocked = 0;
  std::uint32_t unroutable = 0;
  std::uint64_t worst_collisions = 0;
  std::uint64_t fallback_pairs = 0;
};

/// Seed for (sweep seed, failure level, chunk) — decorrelated via
/// SplitMix64 so neighboring levels/chunks share no stream structure.
std::uint64_t chunk_seed(std::uint64_t seed, std::uint32_t failures,
                         std::uint32_t chunk) {
  SplitMix64 sm(seed ^ (std::uint64_t{failures} << 32) ^ chunk);
  return sm.next();
}

}  // namespace

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                 ThreadPool& pool) {
  NBCLOS_REQUIRE(config.n >= 2 && config.r >= 2, "sweep needs n, r >= 2");
  NBCLOS_REQUIRE(config.failure_step >= 1, "failure step must be >= 1");
  NBCLOS_REQUIRE(config.chunks >= 1, "need at least one chunk");
  NBCLOS_REQUIRE(config.permutations_per_level >= 1,
                 "need at least one permutation per level");

  const FoldedClos ftree(
      FtreeParams{config.n, config.n * config.n, config.r});
  NBCLOS_REQUIRE(config.max_failures <= ftree.r() * ftree.m(),
                 "cannot fail more uplink pairs than the ftree has");
  const Network net = build_network(ftree);
  // One shuffled order for the whole sweep: level k fails the first k
  // pairs, so failure sets are nested and the margin is well defined.
  const auto pair_order =
      fault::FailureModel::shuffled_uplink_pairs(ftree, config.seed);

  FaultSweepResult result;
  result.permutations_per_level = config.permutations_per_level;

  obs::ScopedSpan sweep_span("fault.sweep", "sweep");
  sweep_span.arg("max_failures", static_cast<double>(config.max_failures));
  fault::DegradedView view(net);
  std::uint32_t failed = 0;
  for (std::uint32_t failures = 0; failures <= config.max_failures;
       failures += config.failure_step) {
    obs::ScopedSpan level_span("fault.level", "sweep");
    level_span.arg("failures", static_cast<double>(failures));
    // Grow the failure set incrementally (sets are nested by design).
    for (; failed < failures; ++failed) {
      view.fail_channel(
          ftree.up_link(pair_order[failed].first, pair_order[failed].second)
              .value);
      view.fail_channel(
          ftree.down_link(pair_order[failed].second, pair_order[failed].first)
              .value);
    }
    const fault::DegradedYuanRouting routing(ftree, view);
    // One degraded route cache per failure level: the level's routing is
    // fixed, so its paths, fallback choices, and unroutable pairs are
    // materialized once (with per-pair flags) and every trial below
    // replays flat link runs instead of calling try_route per pair.
    // The cache is invalid the moment the failure set grows — the next
    // level iteration rebuilds it from the new DegradedYuanRouting.
    const routing::RouteCache cache(
        ftree, [&](SDPair sd, FtreePath& path) -> std::uint8_t {
          const auto routed = routing.try_route(sd);
          if (!routed.has_value()) return routing::RouteCache::kUnroutable;
          path = *routed;
          std::uint8_t bits = 0;
          if (!routed->direct && routing.uses_fallback(sd)) {
            bits |= routing::RouteCache::kFallback;
          }
          return bits;
        });

    // The trial split is over config.chunks *logical* chunks with
    // chunk-derived seeds, not over worker threads, so the counts are
    // bit-identical for any pool size.
    std::vector<ChunkCounts> partials(config.chunks);
    const auto trials = config.permutations_per_level;
    pool.parallel_for(
        0, config.chunks,
        [&](std::size_t chunk) {
          const auto lo = static_cast<std::uint32_t>(
              std::uint64_t{trials} * chunk / config.chunks);
          const auto hi = static_cast<std::uint32_t>(
              std::uint64_t{trials} * (chunk + 1) / config.chunks);
          Xoshiro256 rng(chunk_seed(config.seed, failures,
                                    static_cast<std::uint32_t>(chunk)));
          auto& counts = partials[chunk];
          LinkLoadMap load(ftree);
          std::uint64_t lookups = 0;
          for (std::uint32_t trial = lo; trial < hi; ++trial) {
            const auto pattern =
                random_permutation(ftree.leaf_count(), rng);
            load.clear();
            bool unroutable = false;
            // Pair iteration order matters: fallback_pairs counts pairs
            // seen before the first unroutable one, exactly as the
            // per-pair try_route loop did.
            for (const auto sd : pattern) {
              const auto flags = cache.flags(sd.src.value, sd.dst.value);
              if ((flags & routing::RouteCache::kUnroutable) != 0) {
                unroutable = true;
                break;
              }
              if ((flags & routing::RouteCache::kFallback) != 0) {
                ++counts.fallback_pairs;
              }
              ++lookups;
              load.add_run(cache.links(sd.src.value, sd.dst.value));
            }
            if (unroutable) {
              ++counts.unroutable;
              continue;
            }
            const auto collisions = load.colliding_pairs();
            if (collisions > 0) ++counts.blocked;
            counts.worst_collisions =
                std::max(counts.worst_collisions, collisions);
          }
          routing::RouteCache::note_lookups(lookups);
        });

    FaultSweepLevel level;
    level.failures = failures;
    for (const auto& counts : partials) {
      level.blocked_permutations += counts.blocked;
      level.unroutable_permutations += counts.unroutable;
      level.worst_collisions =
          std::max(level.worst_collisions, counts.worst_collisions);
      level.fallback_pairs += counts.fallback_pairs;
    }
    result.levels.push_back(level);
    obs::metrics().counter("fault.levels").add(1);
    obs::metrics()
        .counter("fault.permutations")
        .add(config.permutations_per_level);

    const bool blocks =
        level.blocked_permutations + level.unroutable_permutations > 0;
    if (blocks && !result.first_blocking_failures.has_value()) {
      result.first_blocking_failures = failures;
      if (config.stop_at_first_blocking) break;
    }
  }
  return result;
}

std::vector<FaultThroughputLevel> run_fault_throughput_sweep(
    const FoldedClos& ftree, const Network& net, const RoutingTable& table,
    const sim::TrafficPattern& traffic, const sim::SimConfig& sim_config,
    const std::vector<std::uint32_t>& levels, std::uint64_t fault_seed,
    ThreadPool* pool) {
  std::vector<FaultThroughputLevel> results(levels.size());
  obs::ScopedSpan sweep_span("fault.throughput_sweep", "sweep");
  sweep_span.arg("levels", static_cast<double>(levels.size()));
  const auto run_level = [&](std::size_t i) {
    obs::ScopedSpan level_span("fault.level", "sweep");
    level_span.arg("failures", static_cast<double>(levels[i]));
    fault::DegradedView view(net);
    fault::FailureModel model(net);
    model.inject_random_uplink_failures(ftree, levels[i], fault_seed);
    model.apply_static(view);
    fault::FaultTolerantOracle oracle(ftree, view, sim::UplinkPolicy::kTable,
                                      &table);
    sim::PacketSim simulation(net, oracle, traffic, sim_config, &view);
    auto& level = results[i];
    level.failures = levels[i];
    level.sim = simulation.run();
    level.reroutes = oracle.reroute_count();
  };
  if (pool != nullptr && levels.size() > 1) {
    pool->parallel_for(0, levels.size(), run_level);
  } else {
    for (std::size_t i = 0; i < levels.size(); ++i) run_level(i);
  }
  return results;
}

}  // namespace nbclos::analysis
