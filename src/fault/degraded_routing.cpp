#include "nbclos/fault/degraded_routing.hpp"

#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos::fault {

FtreeLiveness::FtreeLiveness(const FoldedClos& ftree, const DegradedView& view)
    : ftree_(&ftree), view_(&view), map_{ftree.params()} {
  NBCLOS_REQUIRE(
      view.network().channel_count() == ftree.link_count() &&
          view.network().vertex_count() ==
              ftree.leaf_count() + ftree.switch_count(),
      "view's network does not match this ftree (must come from "
      "build_network)");
}

DegradedYuanRouting::DegradedYuanRouting(const FoldedClos& ftree,
                                         const DegradedView& view)
    : SinglePathRouting(ftree), liveness_(ftree, view) {
  NBCLOS_REQUIRE(std::uint64_t{ftree.m()} >= std::uint64_t{ftree.n()} *
                                                 ftree.n(),
                 "Yuan routing requires m >= n^2 top switches");
}

TopId DegradedYuanRouting::primary_top(SDPair sd) const {
  const auto& ft = ftree();
  return YuanNonblockingRouting::top_index(ft.n(), ft.local_of(sd.src),
                                           ft.local_of(sd.dst));
}

std::optional<TopId> DegradedYuanRouting::try_top_for(SDPair sd) const {
  const auto& ft = ftree();
  NBCLOS_REQUIRE(ft.needs_top(sd), "same-switch pair never uses a top switch");
  const BottomId sb = ft.switch_of(sd.src);
  const BottomId db = ft.switch_of(sd.dst);
  const std::uint32_t primary = primary_top(sd).value;
  // Scan from the Theorem 3 assignment: step 0 is the pristine choice, so
  // healthy pairs keep their nonblocking slot and degraded pairs take the
  // nearest live one — deterministic, hence reproducible and table-free.
  for (std::uint32_t step = 0; step < ft.m(); ++step) {
    const TopId t{(primary + step) % ft.m()};
    if (liveness_.top_usable(sb, db, t)) return t;
  }
  return std::nullopt;
}

std::optional<FtreePath> DegradedYuanRouting::try_route(SDPair sd) const {
  const auto& ft = ftree();
  NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
  if (!liveness_.leaf_up_alive(sd.src) || !liveness_.leaf_down_alive(sd.dst)) {
    return std::nullopt;
  }
  if (!ft.needs_top(sd)) return ft.direct_path(sd);
  const auto top = try_top_for(sd);
  if (!top.has_value()) return std::nullopt;
  return ft.cross_path(sd, *top);
}

bool DegradedYuanRouting::uses_fallback(SDPair sd) const {
  const auto top = try_top_for(sd);
  return top.has_value() && *top != primary_top(sd);
}

TopId DegradedYuanRouting::top_for(SDPair sd) const {
  const auto top = try_top_for(sd);
  NBCLOS_REQUIRE(top.has_value(),
                 "SD pair has no live path on the degraded fabric");
  return *top;
}

}  // namespace nbclos::fault
