#include "nbclos/fault/failure_model.hpp"

#include <algorithm>

#include "nbclos/util/prng.hpp"

namespace nbclos::fault {

void FailureModel::fail_channel(std::uint32_t channel, std::uint64_t cycle) {
  NBCLOS_REQUIRE(channel < net_->channel_count(), "channel id out of range");
  events_.push_back({cycle, FaultAction::kFailChannel, channel});
}

void FailureModel::recover_channel(std::uint32_t channel, std::uint64_t cycle) {
  NBCLOS_REQUIRE(channel < net_->channel_count(), "channel id out of range");
  events_.push_back({cycle, FaultAction::kRecoverChannel, channel});
}

void FailureModel::fail_vertex(std::uint32_t vertex, std::uint64_t cycle) {
  NBCLOS_REQUIRE(vertex < net_->vertex_count(), "vertex id out of range");
  events_.push_back({cycle, FaultAction::kFailVertex, vertex});
}

void FailureModel::recover_vertex(std::uint32_t vertex, std::uint64_t cycle) {
  NBCLOS_REQUIRE(vertex < net_->vertex_count(), "vertex id out of range");
  events_.push_back({cycle, FaultAction::kRecoverVertex, vertex});
}

void FailureModel::require_ftree_net(const FoldedClos& ftree) const {
  NBCLOS_REQUIRE(
      net_->channel_count() == ftree.link_count() &&
          net_->vertex_count() == ftree.leaf_count() + ftree.switch_count(),
      "network does not match this ftree (must come from build_network)");
}

void FailureModel::fail_uplink_pair(const FoldedClos& ftree, BottomId b,
                                    TopId t, std::uint64_t cycle) {
  require_ftree_net(ftree);
  fail_channel(ftree.up_link(b, t).value, cycle);
  fail_channel(ftree.down_link(t, b).value, cycle);
}

void FailureModel::recover_uplink_pair(const FoldedClos& ftree, BottomId b,
                                       TopId t, std::uint64_t cycle) {
  require_ftree_net(ftree);
  recover_channel(ftree.up_link(b, t).value, cycle);
  recover_channel(ftree.down_link(t, b).value, cycle);
}

void FailureModel::fail_top_switch(const FoldedClos& ftree, TopId t,
                                   std::uint64_t cycle) {
  require_ftree_net(ftree);
  NBCLOS_REQUIRE(t.value < ftree.top_count(), "top switch id out of range");
  fail_vertex(FtreeNetworkMap{ftree.params()}.top(t), cycle);
}

void FailureModel::recover_top_switch(const FoldedClos& ftree, TopId t,
                                      std::uint64_t cycle) {
  require_ftree_net(ftree);
  NBCLOS_REQUIRE(t.value < ftree.top_count(), "top switch id out of range");
  recover_vertex(FtreeNetworkMap{ftree.params()}.top(t), cycle);
}

std::vector<std::pair<BottomId, TopId>> FailureModel::shuffled_uplink_pairs(
    const FoldedClos& ftree, std::uint64_t seed) {
  std::vector<std::pair<BottomId, TopId>> pairs;
  pairs.reserve(std::size_t{ftree.r()} * ftree.m());
  for (std::uint32_t b = 0; b < ftree.r(); ++b) {
    for (std::uint32_t t = 0; t < ftree.m(); ++t) {
      pairs.emplace_back(BottomId{b}, TopId{t});
    }
  }
  Xoshiro256 rng(seed);
  shuffle(pairs.begin(), pairs.end(), rng);
  return pairs;
}

void FailureModel::inject_random_uplink_failures(const FoldedClos& ftree,
                                                 std::uint32_t count,
                                                 std::uint64_t seed,
                                                 std::uint64_t cycle) {
  require_ftree_net(ftree);
  const auto pairs = shuffled_uplink_pairs(ftree, seed);
  NBCLOS_REQUIRE(count <= pairs.size(),
                 "cannot fail more uplink pairs than the ftree has");
  for (std::uint32_t i = 0; i < count; ++i) {
    fail_uplink_pair(ftree, pairs[i].first, pairs[i].second, cycle);
  }
}

void FailureModel::inject_random_top_failures(const FoldedClos& ftree,
                                              std::uint32_t count,
                                              std::uint64_t seed,
                                              std::uint64_t cycle) {
  require_ftree_net(ftree);
  NBCLOS_REQUIRE(count <= ftree.top_count(),
                 "cannot fail more top switches than the ftree has");
  std::vector<TopId> tops;
  tops.reserve(ftree.top_count());
  for (std::uint32_t t = 0; t < ftree.top_count(); ++t) {
    tops.push_back(TopId{t});
  }
  Xoshiro256 rng(seed);
  shuffle(tops.begin(), tops.end(), rng);
  for (std::uint32_t i = 0; i < count; ++i) {
    fail_top_switch(ftree, tops[i], cycle);
  }
}

std::vector<FaultEvent> FailureModel::schedule() const {
  auto sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  return sorted;
}

void FailureModel::apply_up_to(DegradedView& view, std::uint64_t cycle) const {
  NBCLOS_REQUIRE(&view.network() == net_,
                 "view was built over a different network");
  for (const auto& event : schedule()) {
    if (event.cycle > cycle) break;
    view.apply(event);
  }
}

}  // namespace nbclos::fault
