#include "nbclos/fault/fault_oracle.hpp"

namespace nbclos::fault {

FaultTolerantOracle::FaultTolerantOracle(const FoldedClos& ftree,
                                         const DegradedView& view,
                                         sim::UplinkPolicy policy,
                                         const RoutingTable* table,
                                         std::uint64_t seed)
    : liveness_(ftree, view), map_{ftree.params()}, policy_(policy),
      table_(table), rng_(seed) {
  if (policy == sim::UplinkPolicy::kTable) {
    NBCLOS_REQUIRE(table != nullptr, "table policy needs a routing table");
  }
  candidates_.reserve(ftree.m());
}

std::string FaultTolerantOracle::name() const {
  switch (policy_) {
    case sim::UplinkPolicy::kTable: return "ftree-fault-table";
    case sim::UplinkPolicy::kRandom: return "ftree-fault-random";
    case sim::UplinkPolicy::kLeastQueue: return "ftree-fault-least-queue";
    case sim::UplinkPolicy::kDModK: return "ftree-fault-dmodk";
  }
  return "ftree-fault-unknown";
}

std::uint32_t FaultTolerantOracle::pick_uplink(const sim::SimView& view,
                                               BottomId here, SDPair sd) {
  const auto& ft = liveness_.ftree();
  const BottomId dstb = ft.switch_of(sd.dst);
  candidates_.clear();
  for (std::uint32_t t = 0; t < ft.m(); ++t) {
    if (liveness_.top_usable(here, dstb, TopId{t})) candidates_.push_back(t);
  }
  if (candidates_.empty()) {
    ++no_routes_;
    return kNoRoute;
  }

  const auto usable = [&](std::uint32_t t) {
    return liveness_.top_usable(here, dstb, TopId{t});
  };
  const auto least_queue = [&]() {
    std::uint32_t best_top = candidates_.front();
    std::uint32_t best_depth = UINT32_MAX;
    for (const auto t : candidates_) {
      const auto depth = view.queue_depth(ft.up_link(here, TopId{t}).value);
      if (depth < best_depth) {
        best_depth = depth;
        best_top = t;
      }
    }
    return best_top;
  };

  std::uint32_t chosen = 0;
  switch (policy_) {
    case sim::UplinkPolicy::kTable: {
      const auto top = table_->lookup(sd);
      NBCLOS_REQUIRE(top.has_value(), "routing table missing an SD pair");
      if (usable(top->value)) {
        chosen = top->value;
      } else {
        ++reroutes_;
        chosen = least_queue();
      }
      break;
    }
    case sim::UplinkPolicy::kDModK: {
      const std::uint32_t preferred = sd.dst.value % ft.m();
      if (usable(preferred)) {
        chosen = preferred;
      } else {
        ++reroutes_;
        // Deterministic scan from the static choice, mirroring
        // DegradedYuanRouting's fallback order.
        chosen = preferred;
        for (std::uint32_t step = 1; step < ft.m(); ++step) {
          const std::uint32_t t = (preferred + step) % ft.m();
          if (usable(t)) {
            chosen = t;
            break;
          }
        }
      }
      break;
    }
    case sim::UplinkPolicy::kRandom:
      chosen = candidates_[rng_.below(candidates_.size())];
      break;
    case sim::UplinkPolicy::kLeastQueue:
      chosen = least_queue();
      break;
  }
  return ft.up_link(here, TopId{chosen}).value;
}

std::uint32_t FaultTolerantOracle::next_channel(const sim::SimView& view,
                                                std::uint32_t vertex,
                                                const sim::Packet& packet) {
  const auto& ft = liveness_.ftree();
  const LeafId dst{packet.dst_terminal};
  NBCLOS_REQUIRE(map_.is_terminal(packet.dst_terminal),
                 "destination is not a terminal");

  const auto live_or_drop = [&](std::uint32_t channel) {
    if (liveness_.view().channel_alive(channel)) return channel;
    ++no_routes_;
    return kNoRoute;
  };

  if (map_.is_terminal(vertex)) {
    // Inject: the leaf-up channel is the only exit.
    return live_or_drop(ft.leaf_up_link(LeafId{vertex}).value);
  }
  if (map_.is_top(vertex)) {
    // Descend — forced; a dead down link at this point loses the packet
    // (fault-aware uplink selection avoids creating this situation, but a
    // link can die while the packet is in flight).
    return live_or_drop(
        ft.down_link(map_.top_of(vertex), ft.switch_of(dst)).value);
  }
  const BottomId here = map_.bottom_of(vertex);
  if (ft.switch_of(dst) == here) {
    return live_or_drop(ft.leaf_down_link(dst).value);
  }
  return pick_uplink(view, here, {LeafId{packet.src_terminal}, dst});
}

}  // namespace nbclos::fault
