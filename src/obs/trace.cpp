#include "nbclos/obs/trace.hpp"

#if NBCLOS_OBS_ENABLED

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "nbclos/util/json.hpp"

namespace nbclos::obs {

namespace detail {

namespace {

/// Per-thread event buffer.  Buffers are owned by a global registry (not
/// the thread), so events survive thread exit and pool teardown; a
/// thread's buffer is registered once, on its first recorded event.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct Collector {
  std::mutex mutex;  ///< guards registration + start/stop, not recording
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<bool> active{false};
  std::atomic<std::uint32_t> next_tid{0};
  std::chrono::steady_clock::time_point epoch;
};

Collector& collector() {
  static Collector instance;
  return instance;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto owned = std::make_unique<ThreadBuffer>();
    ThreadBuffer* raw = owned.get();
    Collector& c = collector();
    const std::scoped_lock lock(c.mutex);
    raw->tid = c.next_tid.fetch_add(1, std::memory_order_relaxed);
    c.buffers.push_back(std::move(owned));
    return raw;
  }();
  return *buffer;
}

void write_event_fields(JsonWriter& json, const TraceEvent& event) {
  json.member("name", event.name);
  json.member("cat", event.cat);
  json.member("ph", std::string_view(&event.phase, 1));
  json.member("pid", std::uint64_t{1});
  json.member("tid", std::uint64_t{event.tid});
  // Chrome expects microseconds; keep sub-us precision as a fraction.
  json.member("ts", static_cast<double>(event.ts_ns) / 1000.0);
  if (event.phase == 'X') {
    json.member("dur", static_cast<double>(event.dur_ns) / 1000.0);
  }
  if (event.argc > 0) {
    json.key("args").begin_object();
    for (std::uint8_t a = 0; a < event.argc; ++a) {
      json.member(event.keys[a], event.vals[a]);
    }
    json.end_object();
  }
}

/// Snapshot all buffers into one timestamp-sorted vector.
std::vector<TraceEvent> sorted_events() {
  Collector& c = collector();
  std::vector<TraceEvent> all;
  {
    const std::scoped_lock lock(c.mutex);
    for (const auto& buffer : c.buffers) {
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

}  // namespace

bool trace_active() noexcept {
  return collector().active.load(std::memory_order_relaxed);
}

std::uint64_t trace_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - collector().epoch)
          .count());
}

void trace_record(const TraceEvent& event) noexcept {
  if (!runtime_enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  buffer.events.push_back(event);
  buffer.events.back().tid = buffer.tid;
}

}  // namespace detail

void TraceSession::start() {
  detail::Collector& c = detail::collector();
  const std::scoped_lock lock(c.mutex);
  if (c.active.load(std::memory_order_relaxed)) return;
  for (auto& buffer : c.buffers) buffer->events.clear();
  c.epoch = std::chrono::steady_clock::now();
  c.active.store(true, std::memory_order_release);
}

void TraceSession::stop() {
  detail::Collector& c = detail::collector();
  const std::scoped_lock lock(c.mutex);
  c.active.store(false, std::memory_order_release);
}

std::size_t TraceSession::event_count() {
  detail::Collector& c = detail::collector();
  const std::scoped_lock lock(c.mutex);
  std::size_t total = 0;
  for (const auto& buffer : c.buffers) total += buffer->events.size();
  return total;
}

void TraceSession::write_chrome(std::ostream& out) {
  const auto events = detail::sorted_events();
  JsonWriter json(out, 0);
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const auto& event : events) {
    json.begin_object();
    detail::write_event_fields(json, event);
    json.end_object();
  }
  json.end_array();
  json.member("displayTimeUnit", "ms");
  json.end_object();
  out << '\n';
}

void TraceSession::write_jsonl(std::ostream& out) {
  for (const auto& event : detail::sorted_events()) {
    JsonWriter json(out, 0);
    json.begin_object();
    detail::write_event_fields(json, event);
    json.end_object();
    out << '\n';
  }
}

void trace_instant(const char* name, const char* cat, const char* k0,
                   double v0, const char* k1, double v1, const char* k2,
                   double v2) noexcept {
  if (!detail::trace_active()) return;
  detail::TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'i';
  event.ts_ns = detail::trace_now_ns();
  const char* keys[] = {k0, k1, k2};
  const double vals[] = {v0, v1, v2};
  for (std::size_t a = 0; a < detail::TraceEvent::kMaxArgs; ++a) {
    if (keys[a] == nullptr) break;
    event.keys[event.argc] = keys[a];
    event.vals[event.argc] = vals[a];
    ++event.argc;
  }
  detail::trace_record(event);
}

void trace_counter(const char* name, double value,
                   const char* series) noexcept {
  if (!detail::trace_active()) return;
  detail::TraceEvent event;
  event.name = name;
  event.cat = "counter";
  event.phase = 'C';
  event.ts_ns = detail::trace_now_ns();
  event.keys[0] = series;
  event.vals[0] = value;
  event.argc = 1;
  detail::trace_record(event);
}

}  // namespace nbclos::obs

#endif  // NBCLOS_OBS_ENABLED
