#include "nbclos/obs/series_export.hpp"

#include <fstream>
#include <ostream>
#include <string>

#include "nbclos/util/json.hpp"

namespace nbclos::obs {

namespace {

const char* agg_name(SeriesAgg agg) {
  return agg == SeriesAgg::kSum ? "sum" : "max";
}

const char* scope_name(SeriesScope scope) {
  return scope == SeriesScope::kInvariant ? "invariant" : "shard_topology";
}

}  // namespace

void write_timeseries_json(std::ostream& out,
                           const std::vector<MergedSeries>& series,
                           const FlightRecorder::Config& config) {
  JsonWriter json(out);
  json.begin_object();
  json.member("schema", "nbclos-timeseries-v1");
  json.member("cadence_cycles", config.cadence);
  json.member("ring_capacity", config.ring_capacity);
  json.member("shards", config.shards);
  json.key("series").begin_array();
  for (const auto& s : series) {
    json.begin_object();
    json.member("name", s.name);
    json.member("agg", agg_name(s.agg));
    json.member("scope", scope_name(s.scope));
    json.member("stride_cycles", s.stride_cycles);
    json.key("points").begin_array();
    for (const auto& point : s.points) {
      json.begin_array();
      json.value(point.t);
      json.value(point.v);
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << "\n";
}

void write_timeseries_csv(std::ostream& out,
                          const std::vector<MergedSeries>& series,
                          const FlightRecorder::Config& config) {
  out << "# nbclos-timeseries-v1 cadence=" << config.cadence
      << " ring=" << config.ring_capacity << " shards=" << config.shards
      << "\n";
  out << "series,agg,scope,stride_cycles,t,v\n";
  for (const auto& s : series) {
    for (const auto& point : s.points) {
      out << s.name << "," << agg_name(s.agg) << "," << scope_name(s.scope)
          << "," << s.stride_cycles << "," << point.t << "," << point.v
          << "\n";
    }
  }
}

bool write_timeseries_file(const std::string& path,
                           const std::vector<MergedSeries>& series,
                           const FlightRecorder::Config& config) {
  std::ofstream out(path);
  if (!out) return false;
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    write_timeseries_csv(out, series, config);
  } else {
    write_timeseries_json(out, series, config);
  }
  return static_cast<bool>(out);
}

}  // namespace nbclos::obs
