#include "nbclos/obs/metrics.hpp"

#if NBCLOS_OBS_ENABLED

#include <algorithm>

#include "nbclos/util/check.hpp"

namespace nbclos::obs {

namespace detail {

namespace {
std::atomic<bool> g_enabled{true};
std::atomic<std::size_t> g_next_shard{0};
}  // namespace

std::size_t shard_index() noexcept {
  thread_local const std::size_t index =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

bool runtime_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace detail

void set_enabled(bool enabled) noexcept {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() noexcept { return detail::runtime_enabled(); }

HistogramMetric::HistogramMetric(std::uint64_t max_value,
                                 std::size_t max_bins)
    : max_value_(max_value), max_bins_(max_bins) {
  shards_.reserve(detail::kShards);
  for (std::size_t s = 0; s < detail::kShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(max_value, max_bins));
  }
}

void HistogramMetric::record(std::uint64_t value) noexcept {
  if (!detail::runtime_enabled()) return;
  Shard& shard = *shards_[detail::shard_index()];
  const std::scoped_lock lock(shard.mutex);
  shard.hist.add(value);
}

QuantileHistogram HistogramMetric::merged() const {
  QuantileHistogram merged(max_value_, max_bins_);
  for (const auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    merged.merge(shard->hist);
  }
  return merged;
}

void HistogramMetric::reset() {
  for (auto& shard : shards_) {
    const std::scoped_lock lock(shard->mutex);
    shard->hist = QuantileHistogram(max_value_, max_bins_);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name,
                                            std::uint64_t max_value,
                                            std::size_t max_bins) {
  const std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(max_value, max_bins);
  return *slot;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kCounter;
    sample.count = counter->value();
    samples.push_back(std::move(sample));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kGauge;
    sample.gauge = gauge->value();
    samples.push_back(std::move(sample));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kHistogram;
    const auto merged = histogram->merged();
    sample.count = merged.count();
    sample.p50 = merged.quantile(0.50);
    sample.p99 = merged.quantile(0.99);
    sample.p999 = merged.quantile(0.999);
    sample.hist_bucket_width = static_cast<double>(merged.bucket_width());
    samples.push_back(std::move(sample));
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return samples;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace nbclos::obs

#endif  // NBCLOS_OBS_ENABLED
