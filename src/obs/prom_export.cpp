#include "nbclos/obs/prom_export.hpp"

#include <cctype>
#include <limits>
#include <ostream>
#include <sstream>

#include "nbclos/util/json.hpp"  // write_json_double: shortest round-trip

namespace nbclos::obs {

namespace {

/// Prometheus sample values are floats; emit doubles in shortest
/// round-trip form (write_json_double) except the non-finite cases,
/// where Prometheus spells them NaN / +Inf / -Inf rather than null.
void write_prom_double(std::ostream& out, double value) {
  if (value != value) {
    out << "NaN";
  } else if (value == std::numeric_limits<double>::infinity()) {
    out << "+Inf";
  } else if (value == -std::numeric_limits<double>::infinity()) {
    out << "-Inf";
  } else {
    write_json_double(out, value);
  }
}

void write_quantile(std::ostream& out, const std::string& name,
                    const char* quantile, double value) {
  out << name << "{quantile=\"" << quantile << "\"} ";
  write_prom_double(out, value);
  out << "\n";
}

}  // namespace

std::string prom_name(std::string_view name) {
  std::string out = "nbclos_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void prom_export(std::ostream& out,
                 const std::vector<MetricSample>& snapshot) {
  for (const auto& sample : snapshot) {
    const std::string name = prom_name(sample.name);
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        out << "# TYPE " << name << " counter\n"
            << name << " " << sample.count << "\n";
        break;
      case MetricSample::Kind::kGauge:
        out << "# TYPE " << name << " gauge\n"
            << name << " " << sample.gauge << "\n";
        break;
      case MetricSample::Kind::kHistogram:
        out << "# TYPE " << name << " summary\n";
        write_quantile(out, name, "0.5", sample.p50);
        write_quantile(out, name, "0.99", sample.p99);
        write_quantile(out, name, "0.999", sample.p999);
        out << name << "_count " << sample.count << "\n";
        break;
    }
  }
}

std::string prom_export_global() {
  std::ostringstream out;
  prom_export(out, metrics().snapshot());
  return out.str();
}

}  // namespace nbclos::obs
