#include "nbclos/obs/run_info.hpp"

#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "nbclos/obs/metrics.hpp"  // NBCLOS_OBS_ENABLED default
#include "nbclos/util/json.hpp"

// Build facts injected by src/obs/CMakeLists.txt; the fallbacks keep
// non-CMake compiles (e.g. IDE single-file checks) working.
#ifndef NBCLOS_VERSION_STRING
#define NBCLOS_VERSION_STRING "0.0.0"
#endif
#ifndef NBCLOS_GIT_SHA
#define NBCLOS_GIT_SHA "unknown"
#endif
#ifndef NBCLOS_BUILD_TYPE
#define NBCLOS_BUILD_TYPE "unknown"
#endif
#ifndef NBCLOS_CXX_FLAGS
#define NBCLOS_CXX_FLAGS ""
#endif

namespace nbclos::obs {

namespace {

/// Online NUMA node count parsed from sysfs.  Deliberately duplicates a
/// sliver of sim::NumaTopology::detect(): run_info lives in nbclos_util,
/// below the sim library in the dependency order, and a manifest must
/// not pull the simulation engine in.
std::uint32_t numa_node_count() {
#if defined(__linux__)
  std::uint32_t nodes = 0;
  while (true) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(nodes);
    if (::access(path.c_str(), F_OK) != 0) break;
    ++nodes;
  }
  return nodes > 0 ? nodes : 1;
#else
  return 1;
#endif
}

std::string compiler_string() {
#if defined(__clang__)
  return std::string("Clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("GNU ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

RunInfo RunInfo::current() {
  RunInfo info;
  info.version = NBCLOS_VERSION_STRING;
  info.git_sha = NBCLOS_GIT_SHA;
  info.compiler = compiler_string();
  info.build_type = NBCLOS_BUILD_TYPE;
  info.cxx_flags = NBCLOS_CXX_FLAGS;
#if NBCLOS_OBS_ENABLED
  info.obs_enabled = true;
#else
  info.obs_enabled = false;
#endif
  info.hardware_concurrency = std::thread::hardware_concurrency();
  info.numa_nodes = numa_node_count();
  return info;
}

void RunInfo::write_json(JsonWriter& writer) const {
  writer.begin_object();
  writer.member("version", version);
  writer.member("git_sha", git_sha);
  writer.member("compiler", compiler);
  writer.member("build_type", build_type);
  writer.member("cxx_flags", cxx_flags);
  writer.member("obs_enabled", obs_enabled);
  writer.member("seed", seed);
  writer.member("threads", threads);
  writer.member("hardware_concurrency", hardware_concurrency);
  writer.member("numa_nodes", numa_nodes);
  writer.member("pin_threads", pin_threads);
  writer.member("wall_seconds", wall_seconds);
  writer.member("shards", shards);
  writer.member("peak_rss_kb", peak_rss_kb);
  writer.end_object();
}

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already KiB
#endif
#else
  return 0;
#endif
}

std::string RunInfo::summary() const {
  std::ostringstream out;
  out << "nbclos " << version << " (" << git_sha << ", " << compiler << ", "
      << build_type << ", obs " << (obs_enabled ? "on" : "off") << ")";
  return out.str();
}

}  // namespace nbclos::obs
