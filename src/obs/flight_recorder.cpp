#include "nbclos/obs/flight_recorder.hpp"

#if NBCLOS_OBS_ENABLED

#include <algorithm>

#include "nbclos/util/check.hpp"

namespace nbclos::obs {

void FlightRecorder::configure(const Config& config) {
  NBCLOS_REQUIRE(config.cadence > 0, "flight recorder cadence must be > 0");
  NBCLOS_REQUIRE(config.ring_capacity >= 2,
                 "flight recorder ring needs at least 2 samples");
  NBCLOS_REQUIRE(config.shards >= 1, "flight recorder needs >= 1 shard");
  config_ = config;
  series_.clear();
  active_ = true;
}

FlightRecorder::SeriesId FlightRecorder::series(const std::string& name,
                                                SeriesAgg agg,
                                                SeriesScope scope) {
  NBCLOS_REQUIRE(active_, "register series after configure()");
  for (SeriesId id = 0; id < series_.size(); ++id) {
    if (series_[id].name == name) return id;
  }
  SeriesState state;
  state.name = name;
  state.agg = agg;
  state.scope = scope;
  state.cells.resize(config_.shards);
  for (auto& cell : state.cells) {
    cell.ring.reserve(config_.ring_capacity);
  }
  series_.push_back(std::move(state));
  return static_cast<SeriesId>(series_.size() - 1);
}

void FlightRecorder::record(SeriesId id, std::uint32_t shard,
                            std::uint64_t cycle, std::int64_t value) {
  if (!active_) return;
  NBCLOS_DEBUG_CHECK(id < series_.size(), "unknown series id");
  NBCLOS_DEBUG_CHECK(shard < config_.shards, "shard out of range");
  Cell& cell = series_[id].cells[shard];
  const std::uint64_t idx = cycle / config_.cadence;
  // Downsampled-away sample: the cell's stride has outgrown this index.
  if (idx % cell.stride != 0) return;
  if (cell.ring.size() == config_.ring_capacity) {
    // Halve resolution: keep the samples whose index is a multiple of
    // the doubled stride.  Pure function of the retained timestamps, so
    // every shard (which recorded the same cycles) compacts identically.
    const std::uint64_t doubled = cell.stride * 2;
    auto keep = cell.ring.begin();
    for (const auto& point : cell.ring) {
      if ((point.t / config_.cadence) % doubled == 0) *keep++ = point;
    }
    cell.ring.erase(keep, cell.ring.end());
    cell.stride = doubled;
    if (idx % cell.stride != 0) return;
  }
  cell.ring.push_back(SeriesPoint{cycle, value});
}

std::vector<MergedSeries> FlightRecorder::merged() const {
  std::vector<MergedSeries> out;
  if (!active_) return out;
  out.reserve(series_.size());
  for (const auto& state : series_) {
    MergedSeries merged;
    merged.name = state.name;
    merged.agg = state.agg;
    merged.scope = state.scope;
    // Timestamps are identical across shards by construction; merge the
    // intersection defensively so a shard that stopped early (e.g. an
    // exception path) degrades to a shorter series instead of a skewed
    // sum.  All cells share one stride once they recorded the same
    // cycles, so the intersection is a simple sorted-list walk.
    std::uint64_t stride = 0;
    std::vector<const Cell*> cells;
    for (const auto& cell : state.cells) {
      if (cell.ring.empty()) continue;
      cells.push_back(&cell);
      stride = std::max(stride, cell.stride);
    }
    merged.stride_cycles = stride * config_.cadence;
    if (!cells.empty()) {
      std::vector<std::size_t> cursor(cells.size(), 0);
      for (const auto& point : cells[0]->ring) {
        bool everywhere = true;
        std::int64_t sum = point.v;
        std::int64_t peak = point.v;
        for (std::size_t c = 1; c < cells.size(); ++c) {
          const auto& ring = cells[c]->ring;
          std::size_t& at = cursor[c];
          while (at < ring.size() && ring[at].t < point.t) ++at;
          if (at == ring.size() || ring[at].t != point.t) {
            everywhere = false;
            break;
          }
          sum += ring[at].v;
          peak = std::max(peak, ring[at].v);
        }
        if (!everywhere) continue;
        merged.points.push_back(SeriesPoint{
            point.t, state.agg == SeriesAgg::kSum ? sum : peak});
      }
    }
    out.push_back(std::move(merged));
  }
  return out;
}

std::vector<MergedSeries> FlightRecorder::tail(std::size_t k) const {
  auto all = merged();
  for (auto& series : all) {
    if (series.points.size() > k) {
      series.points.erase(series.points.begin(),
                          series.points.end() - static_cast<std::ptrdiff_t>(k));
    }
  }
  return all;
}

std::size_t FlightRecorder::sample_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& state : series_) {
    for (const auto& cell : state.cells) {
      total += cell.ring.capacity() * sizeof(SeriesPoint);
    }
  }
  return total;
}

}  // namespace nbclos::obs

#endif  // NBCLOS_OBS_ENABLED
