#include "nbclos/adaptive/partitions.hpp"

namespace nbclos::adaptive {

AdaptiveParams AdaptiveParams::from(const FoldedClos& ftree) {
  NBCLOS_REQUIRE(ftree.n() >= 2,
                 "adaptive scheme needs n >= 2 (base-n digits)");
  AdaptiveParams params;
  params.n = ftree.n();
  params.r = ftree.r();
  params.c = min_digit_width(ftree.r(), ftree.n());
  return params;
}

std::uint32_t partition_key(const AdaptiveParams& params, std::uint32_t k,
                            LeafId dst) {
  NBCLOS_REQUIRE(k <= params.c, "partition index out of range");
  NBCLOS_REQUIRE(dst.value < params.r * params.n, "leaf id out of range");
  const std::uint32_t p = dst.value % params.n;  // local node number
  if (k == 0) return p;
  const std::uint32_t switch_id = dst.value / params.n;
  const DigitCodec codec(params.n, params.c);
  const std::uint32_t digit = codec.digit(switch_id, k - 1);  // s_{k-1}
  return (digit + params.n - p % params.n) % params.n;        // (s_{k-1}-p) mod n
}

std::vector<std::size_t> largest_routable_subset(
    const AdaptiveParams& params, std::uint32_t k,
    std::span<const SDPair> pairs) {
  std::vector<bool> key_taken(params.n, false);
  std::vector<std::size_t> subset;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const std::uint32_t key = partition_key(params, k, pairs[i].dst);
    if (!key_taken[key]) {
      key_taken[key] = true;
      subset.push_back(i);
    }
  }
  return subset;
}

bool is_class_diff_partition(const AdaptiveParams& params, std::uint32_t k) {
  // Two distinct destinations in the same bottom switch must map to
  // different partition switches.
  for (std::uint32_t sw = 0; sw < params.r; ++sw) {
    std::vector<bool> seen(params.n, false);
    for (std::uint32_t p = 0; p < params.n; ++p) {
      const LeafId dst{sw * params.n + p};
      const std::uint32_t key = partition_key(params, k, dst);
      if (seen[key]) return false;
      seen[key] = true;
    }
  }
  return true;
}

}  // namespace nbclos::adaptive
