#include "nbclos/adaptive/router.hpp"

#include <algorithm>
#include <unordered_set>

#include "nbclos/adaptive/distributed.hpp"

namespace nbclos::adaptive {

std::vector<FtreePath> AdaptiveSchedule::to_paths(
    const FoldedClos& ftree) const {
  NBCLOS_REQUIRE(ftree.n() == params.n && ftree.r() == params.r,
                 "topology does not match schedule parameters");
  NBCLOS_REQUIRE(ftree.m() >= top_switches_used,
                 "not enough top switches for this schedule");
  std::vector<FtreePath> paths;
  paths.reserve(assignments.size());
  for (const auto& a : assignments) {
    paths.push_back(a.direct ? ftree.direct_path(a.sd)
                             : ftree.cross_path(a.sd, TopId{a.top_switch}));
  }
  return paths;
}

AdaptiveSchedule NonblockingAdaptiveRouter::route(
    const std::vector<SDPair>& pattern) const {
  // Validate the full permutation property up front (Definition 1); the
  // per-switch scheduling itself is the distributed algorithm.
  const std::uint32_t leaf_count = params_.n * params_.r;
  std::unordered_set<std::uint32_t> destinations;
  for (const auto sd : pattern) {
    NBCLOS_REQUIRE(sd.dst.value < leaf_count, "leaf id out of range");
    NBCLOS_REQUIRE(destinations.insert(sd.dst.value).second,
                   "pattern reuses a destination: not a permutation");
  }
  return distributed_route(params_, pattern);
}

}  // namespace nbclos::adaptive
