#include "nbclos/adaptive/lemma6.hpp"

#include <cmath>
#include <unordered_set>

namespace nbclos::adaptive {

std::uint32_t lemma6_key(const DigitCodec& codec, std::uint64_t value,
                         std::uint32_t partition) {
  NBCLOS_REQUIRE(partition < codec.width(), "criterion index out of range");
  const std::uint32_t d0 = codec.digit(value, 0);
  if (partition == 0) return d0;
  const std::uint32_t di = codec.digit(value, partition);
  return (di + codec.radix() - d0) % codec.radix();
}

Lemma6Selection lemma6_select(const DigitCodec& codec,
                              std::span<const std::uint64_t> values) {
  NBCLOS_REQUIRE(!values.empty(), "need at least one number");
  Lemma6Selection best;
  for (std::uint32_t part = 0; part < codec.width(); ++part) {
    std::vector<bool> key_taken(codec.radix(), false);
    std::vector<std::size_t> picked;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const std::uint32_t key = lemma6_key(codec, values[i], part);
      if (!key_taken[key]) {
        key_taken[key] = true;
        picked.push_back(i);
      }
    }
    if (picked.size() > best.indices.size()) {
      best.partition = part;
      best.indices = std::move(picked);
    }
  }
  return best;
}

double lemma6_bound(std::size_t k, std::uint32_t c) {
  return std::pow(static_cast<double>(k),
                  1.0 / (2.0 * (static_cast<double>(c) + 1.0)));
}

}  // namespace nbclos::adaptive
