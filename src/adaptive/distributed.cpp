#include "nbclos/adaptive/distributed.hpp"

#include <algorithm>
#include <unordered_set>

namespace nbclos::adaptive {

std::vector<Assignment> schedule_one_switch(const AdaptiveParams& params,
                                            std::uint32_t switch_id,
                                            std::span<const SDPair> pairs,
                                            PartitionPolicy policy) {
  NBCLOS_REQUIRE(switch_id < params.r, "switch id out of range");
  const std::uint32_t leaf_count = params.n * params.r;

  std::vector<Assignment> assignments(pairs.size());
  std::vector<std::size_t> remaining;  // indices of cross-switch pairs
  std::unordered_set<std::uint32_t> destinations;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto sd = pairs[i];
    NBCLOS_REQUIRE(sd.src.value < leaf_count && sd.dst.value < leaf_count,
                   "leaf id out of range");
    NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
    NBCLOS_REQUIRE(sd.src.value / params.n == switch_id,
                   "pair's source is not in this switch");
    NBCLOS_REQUIRE(destinations.insert(sd.dst.value).second,
                   "destination used more than once");
    assignments[i].sd = sd;
    if (sd.dst.value / params.n == switch_id) {
      assignments[i].direct = true;
    } else {
      remaining.push_back(i);
    }
  }

  // Fig. 4 lines (3)-(12): configurations one at a time; within each,
  // repeatedly route the largest subset on an unused partition.
  std::uint32_t config = 0;
  while (!remaining.empty()) {
    std::vector<bool> partition_used(params.partitions_per_config(), false);
    std::uint32_t partitions_left = params.partitions_per_config();
    while (!remaining.empty() && partitions_left > 0) {
      std::vector<SDPair> live;
      live.reserve(remaining.size());
      for (const auto idx : remaining) live.push_back(pairs[idx]);
      std::uint32_t best_partition = 0;
      std::vector<std::size_t> best_subset;
      for (std::uint32_t k = 0; k < params.partitions_per_config(); ++k) {
        if (partition_used[k]) continue;
        auto subset = largest_routable_subset(params, k, live);
        if (subset.size() > best_subset.size()) {
          best_partition = k;
          best_subset = std::move(subset);
        }
        if (policy == PartitionPolicy::kFirstAvailable &&
            !best_subset.empty()) {
          break;  // ablation: take the first unused partition as-is
        }
      }
      NBCLOS_ASSERT(!best_subset.empty());
      std::vector<bool> taken(remaining.size(), false);
      for (const auto local : best_subset) {
        const std::size_t idx = remaining[local];
        auto& slot = assignments[idx];
        slot.configuration = config;
        slot.partition = best_partition;
        slot.key = partition_key(params, best_partition, pairs[idx].dst);
        slot.top_switch =
            top_switch_index(params, config, best_partition, slot.key);
        slot.direct = false;
        taken[local] = true;
      }
      std::vector<std::size_t> next;
      next.reserve(remaining.size() - best_subset.size());
      for (std::size_t local = 0; local < remaining.size(); ++local) {
        if (!taken[local]) next.push_back(remaining[local]);
      }
      remaining = std::move(next);
      partition_used[best_partition] = true;
      --partitions_left;
    }
    ++config;
  }
  return assignments;
}

AdaptiveSchedule distributed_route(const AdaptiveParams& params,
                                   const std::vector<SDPair>& pattern,
                                   PartitionPolicy policy) {
  const std::uint32_t leaf_count = params.n * params.r;
  // Global permutation validation (sources); per-switch schedulers check
  // the rest.  A real deployment has this guaranteed by construction —
  // one NIC cannot source two flows of one permutation.
  std::unordered_set<std::uint32_t> sources;
  std::vector<std::vector<std::size_t>> by_switch(params.r);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    NBCLOS_REQUIRE(pattern[i].src.value < leaf_count, "leaf id out of range");
    NBCLOS_REQUIRE(sources.insert(pattern[i].src.value).second,
                   "pattern reuses a source: not a permutation");
    by_switch[pattern[i].src.value / params.n].push_back(i);
  }

  AdaptiveSchedule schedule;
  schedule.params = params;
  schedule.assignments.resize(pattern.size());
  std::uint32_t totalconf = 0;
  for (std::uint32_t sw = 0; sw < params.r; ++sw) {
    // Each switch's scheduler sees only its own SD pairs.
    std::vector<SDPair> local;
    local.reserve(by_switch[sw].size());
    for (const auto idx : by_switch[sw]) local.push_back(pattern[idx]);
    const auto local_assignments =
        schedule_one_switch(params, sw, local, policy);
    for (std::size_t j = 0; j < local_assignments.size(); ++j) {
      schedule.assignments[by_switch[sw][j]] = local_assignments[j];
      if (!local_assignments[j].direct) {
        totalconf =
            std::max(totalconf, local_assignments[j].configuration + 1);
      }
    }
  }
  schedule.configurations_used = totalconf;
  schedule.top_switches_used = totalconf * params.switches_per_config();
  return schedule;
}

}  // namespace nbclos::adaptive
