#include "nbclos/circuit/clos_switch.hpp"

#include <algorithm>

#include "nbclos/routing/edge_coloring.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::circuit {

std::string to_string(FitStrategy strategy) {
  switch (strategy) {
    case FitStrategy::kFirstFit: return "first-fit";
    case FitStrategy::kRandom: return "random";
    case FitStrategy::kPacking: return "packing";
    case FitStrategy::kLeastUsed: return "least-used";
  }
  return "unknown";
}

ClosCircuitSwitch::ClosCircuitSwitch(std::uint32_t n, std::uint32_t m,
                                     std::uint32_t r, std::uint64_t seed)
    : n_(n), m_(m), r_(r), rng_(seed),
      first_(r, std::vector<std::int64_t>(m, kFree)),
      second_(m, std::vector<std::int64_t>(r, kFree)), middle_load_(m, 0),
      input_port_circuit_(std::size_t{n} * r, kFree),
      output_port_circuit_(std::size_t{n} * r, kFree) {
  NBCLOS_REQUIRE(n >= 1 && m >= 1 && r >= 2, "invalid Clos parameters");
}

bool ClosCircuitSwitch::input_port_busy(std::uint32_t port) const {
  NBCLOS_REQUIRE(port < port_count(), "input port out of range");
  return input_port_circuit_[port] != kFree;
}

bool ClosCircuitSwitch::output_port_busy(std::uint32_t port) const {
  NBCLOS_REQUIRE(port < port_count(), "output port out of range");
  return output_port_circuit_[port] != kFree;
}

std::optional<std::uint32_t> ClosCircuitSwitch::pick_middle(
    std::uint32_t in_switch, std::uint32_t out_switch, FitStrategy strategy) {
  std::vector<std::uint32_t> free;
  for (std::uint32_t j = 0; j < m_; ++j) {
    if (first_[in_switch][j] == kFree && second_[j][out_switch] == kFree) {
      free.push_back(j);
    }
  }
  if (free.empty()) return std::nullopt;
  switch (strategy) {
    case FitStrategy::kFirstFit:
      return free.front();
    case FitStrategy::kRandom:
      return free[rng_.below(free.size())];
    case FitStrategy::kPacking: {
      // Most-loaded free middle: keeps spare middles empty for the
      // requests that will need them — Benes' wide-sense heuristic.
      auto best = free.front();
      for (const auto j : free) {
        if (middle_load_[j] > middle_load_[best]) best = j;
      }
      return best;
    }
    case FitStrategy::kLeastUsed: {
      auto best = free.front();
      for (const auto j : free) {
        if (middle_load_[j] < middle_load_[best]) best = j;
      }
      return best;
    }
  }
  return std::nullopt;
}

void ClosCircuitSwitch::occupy(const Circuit& circuit) {
  const std::uint32_t in_switch = circuit.input_port / n_;
  const std::uint32_t out_switch = circuit.output_port / n_;
  NBCLOS_ASSERT(first_[in_switch][circuit.middle] == kFree);
  NBCLOS_ASSERT(second_[circuit.middle][out_switch] == kFree);
  first_[in_switch][circuit.middle] = circuit.id;
  second_[circuit.middle][out_switch] = circuit.id;
  ++middle_load_[circuit.middle];
}

void ClosCircuitSwitch::release(const Circuit& circuit) {
  const std::uint32_t in_switch = circuit.input_port / n_;
  const std::uint32_t out_switch = circuit.output_port / n_;
  NBCLOS_ASSERT(first_[in_switch][circuit.middle] == circuit.id);
  NBCLOS_ASSERT(second_[circuit.middle][out_switch] == circuit.id);
  first_[in_switch][circuit.middle] = kFree;
  second_[circuit.middle][out_switch] = kFree;
  --middle_load_[circuit.middle];
}

std::optional<std::uint32_t> ClosCircuitSwitch::connect(
    std::uint32_t input_port, std::uint32_t output_port,
    FitStrategy strategy) {
  NBCLOS_REQUIRE(!input_port_busy(input_port), "input port already in use");
  NBCLOS_REQUIRE(!output_port_busy(output_port), "output port already in use");
  const auto middle =
      pick_middle(input_port / n_, output_port / n_, strategy);
  if (!middle.has_value()) return std::nullopt;
  Circuit circuit;
  circuit.id = static_cast<std::uint32_t>(circuits_.size());
  circuit.input_port = input_port;
  circuit.output_port = output_port;
  circuit.middle = *middle;
  occupy(circuit);
  input_port_circuit_[input_port] = circuit.id;
  output_port_circuit_[output_port] = circuit.id;
  circuits_.push_back(circuit);
  ++active_count_;
  return circuit.id;
}

std::optional<std::uint32_t> ClosCircuitSwitch::connect_with_rearrangement(
    std::uint32_t input_port, std::uint32_t output_port) {
  // Fast path: no rearrangement needed.
  if (const auto id = connect(input_port, output_port, FitStrategy::kFirstFit)) {
    return id;
  }
  // Slepian–Duguid: recolor the whole active set plus the new request.
  // Gather active circuits as bipartite edges (input switch, output
  // switch); per-switch degree <= n <= m, so a proper m-coloring exists.
  std::vector<Circuit> all = circuits();
  Circuit fresh;
  fresh.id = static_cast<std::uint32_t>(circuits_.size());
  fresh.input_port = input_port;
  fresh.output_port = output_port;
  all.push_back(fresh);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(all.size());
  for (const auto& c : all) {
    edges.emplace_back(c.input_port / n_, c.output_port / n_);
  }
  const auto colors = bipartite_edge_coloring(r_, r_, edges);
  for (const auto color : colors) {
    if (color >= m_) return std::nullopt;  // degree exceeded m: impossible
  }
  // Apply: release every old circuit, reassign middles per the coloring.
  for (const auto& c : all) {
    if (c.id != fresh.id) release(c);
  }
  for (std::size_t e = 0; e < all.size(); ++e) {
    auto& c = all[e];
    c.middle = colors[e];
    occupy(c);
    if (c.id == fresh.id) {
      input_port_circuit_[input_port] = c.id;
      output_port_circuit_[output_port] = c.id;
      circuits_.push_back(c);
      ++active_count_;
    } else {
      circuits_[c.id] = c;  // record possibly-new middle
    }
  }
  return fresh.id;
}

void ClosCircuitSwitch::disconnect(std::uint32_t id) {
  NBCLOS_REQUIRE(id < circuits_.size() && circuits_[id].has_value(),
                 "circuit id not active");
  const Circuit circuit = *circuits_[id];
  release(circuit);
  input_port_circuit_[circuit.input_port] = kFree;
  output_port_circuit_[circuit.output_port] = kFree;
  circuits_[id] = std::nullopt;
  --active_count_;
}

std::optional<Circuit> ClosCircuitSwitch::circuit(std::uint32_t id) const {
  if (id >= circuits_.size()) return std::nullopt;
  return circuits_[id];
}

std::vector<Circuit> ClosCircuitSwitch::circuits() const {
  std::vector<Circuit> out;
  out.reserve(active_count_);
  for (const auto& c : circuits_) {
    if (c.has_value()) out.push_back(*c);
  }
  return out;
}

void ClosCircuitSwitch::validate() const {
  std::vector<std::vector<std::int64_t>> first(
      r_, std::vector<std::int64_t>(m_, kFree));
  std::vector<std::vector<std::int64_t>> second(
      m_, std::vector<std::int64_t>(r_, kFree));
  std::size_t count = 0;
  for (const auto& c : circuits_) {
    if (!c.has_value()) continue;
    ++count;
    const std::uint32_t i = c->input_port / n_;
    const std::uint32_t k = c->output_port / n_;
    NBCLOS_ASSERT(first[i][c->middle] == kFree);
    NBCLOS_ASSERT(second[c->middle][k] == kFree);
    first[i][c->middle] = c->id;
    second[c->middle][k] = c->id;
    NBCLOS_ASSERT(input_port_circuit_[c->input_port] == c->id);
    NBCLOS_ASSERT(output_port_circuit_[c->output_port] == c->id);
  }
  NBCLOS_ASSERT(count == active_count_);
  NBCLOS_ASSERT(first == first_);
  NBCLOS_ASSERT(second == second_);
}

ChurnResult run_churn(ClosCircuitSwitch& clos, FitStrategy strategy,
                      std::uint64_t steps, double target_occupancy,
                      bool use_rearrangement, Xoshiro256& rng) {
  NBCLOS_REQUIRE(target_occupancy > 0.0 && target_occupancy <= 1.0,
                 "occupancy must be in (0, 1]");
  ChurnResult result;
  const std::uint32_t ports = clos.port_count();
  std::vector<std::uint32_t> active_ids;

  const auto pick_idle = [&](const auto& busy_fn) -> std::optional<std::uint32_t> {
    // Rejection-sample an idle port; fall back to scan when crowded.
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto p = static_cast<std::uint32_t>(rng.below(ports));
      if (!busy_fn(p)) return p;
    }
    std::vector<std::uint32_t> idle;
    for (std::uint32_t p = 0; p < ports; ++p) {
      if (!busy_fn(p)) idle.push_back(p);
    }
    if (idle.empty()) return std::nullopt;
    return idle[rng.below(idle.size())];
  };

  const auto target_active =
      static_cast<std::size_t>(target_occupancy * ports);
  for (std::uint64_t step = 0; step < steps; ++step) {
    // Birth-death process with hysteresis around the occupancy target:
    // below target, arrivals dominate; at/above it, departures dominate.
    // Arrivals stay probabilistic even when under-occupied so a blocked
    // state always drains instead of hammering the same request forever.
    const double arrival_bias =
        clos.active_circuits() < target_active ? 0.8 : 0.2;
    const bool want_connect =
        active_ids.empty() ||
        (clos.active_circuits() < ports && rng.bernoulli(arrival_bias));
    if (want_connect) {
      const auto in = pick_idle(
          [&](std::uint32_t p) { return clos.input_port_busy(p); });
      const auto out = pick_idle(
          [&](std::uint32_t p) { return clos.output_port_busy(p); });
      if (!in || !out) continue;
      ++result.attempts;
      if (use_rearrangement) {
        const std::size_t before = clos.active_circuits();
        const auto direct =
            clos.connect(*in, *out, FitStrategy::kFirstFit);
        if (direct) {
          active_ids.push_back(*direct);
        } else {
          ++result.rearrangements_needed;
          const auto id = clos.connect_with_rearrangement(*in, *out);
          if (id) {
            active_ids.push_back(*id);
          } else {
            ++result.blocked;
          }
        }
        (void)before;
      } else {
        const auto id = clos.connect(*in, *out, strategy);
        if (id) {
          active_ids.push_back(*id);
        } else {
          ++result.blocked;
        }
      }
    } else if (!active_ids.empty()) {
      const auto idx = rng.below(active_ids.size());
      clos.disconnect(active_ids[idx]);
      active_ids[idx] = active_ids.back();
      active_ids.pop_back();
    }
  }
  return result;
}

AdversarySearchResult adversary_search(std::uint32_t n, std::uint32_t m,
                                       std::uint32_t r, FitStrategy strategy,
                                       std::uint32_t restarts,
                                       std::uint32_t steps_per_restart,
                                       Xoshiro256& rng) {
  AdversarySearchResult result;
  for (std::uint32_t restart = 0; restart < restarts; ++restart) {
    ++result.sequences_tried;
    ClosCircuitSwitch clos(n, m, r, rng());
    std::vector<std::uint32_t> active;
    for (std::uint32_t step = 0; step < steps_per_restart; ++step) {
      // Bias toward filling, with occasional targeted teardown — the
      // classical adversaries against greedy strategies alternate
      // fills and selective removals to fragment the middles.
      const bool teardown = !active.empty() && rng.bernoulli(0.35);
      if (teardown) {
        const auto idx = rng.below(active.size());
        clos.disconnect(active[idx]);
        active[idx] = active.back();
        active.pop_back();
        continue;
      }
      // Random idle pair (skip when saturated).
      std::vector<std::uint32_t> idle_in;
      std::vector<std::uint32_t> idle_out;
      for (std::uint32_t p = 0; p < clos.port_count(); ++p) {
        if (!clos.input_port_busy(p)) idle_in.push_back(p);
        if (!clos.output_port_busy(p)) idle_out.push_back(p);
      }
      if (idle_in.empty() || idle_out.empty()) continue;
      const auto in = idle_in[rng.below(idle_in.size())];
      const auto out = idle_out[rng.below(idle_out.size())];
      ++result.calls_placed;
      const auto id = clos.connect(in, out, strategy);
      if (!id.has_value()) {
        result.blocked_found = true;
        return result;
      }
      active.push_back(*id);
    }
  }
  return result;
}

}  // namespace nbclos::circuit
