#include "nbclos/topology/mport_ntree.hpp"

namespace nbclos {

MportNtreeSize mport_ntree_size(std::uint32_t m, std::uint32_t h) {
  NBCLOS_REQUIRE(m >= 4 && m % 2 == 0, "m-port n-tree needs even m >= 4");
  NBCLOS_REQUIRE(h >= 1, "height must be >= 1");
  const std::uint64_t half = m / 2;
  std::uint64_t half_pow_hm1 = 1;  // (m/2)^(h-1)
  for (std::uint32_t i = 1; i < h; ++i) {
    NBCLOS_REQUIRE(half_pow_hm1 <= UINT64_MAX / half, "size overflow");
    half_pow_hm1 *= half;
  }
  NBCLOS_REQUIRE(half_pow_hm1 <= UINT64_MAX / (2 * half), "size overflow");
  MportNtreeSize size;
  size.switch_radix = m;
  size.height = h;
  size.node_count = 2 * half * half_pow_hm1;            // 2 (m/2)^h
  size.switch_count = (2 * std::uint64_t{h} - 1) * half_pow_hm1;
  return size;
}

FoldedClos mport_2tree(std::uint32_t m) {
  NBCLOS_REQUIRE(m >= 4 && m % 2 == 0, "m-port 2-tree needs even m >= 4");
  return FoldedClos(FtreeParams{/*n=*/m / 2, /*m=*/m / 2, /*r=*/m});
}

}  // namespace nbclos
