#include "nbclos/topology/dot.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "nbclos/util/check.hpp"

namespace nbclos {

void write_dot(std::ostream& os, const Network& net,
               const DotOptions& options) {
  NBCLOS_REQUIRE(net.finalized(), "network must be finalized");
  const char* kind = options.merge_bidirectional ? "graph" : "digraph";
  const char* edge = options.merge_bidirectional ? " -- " : " -> ";
  os << kind << " \"" << options.graph_name << "\" {\n"
     << "  rankdir=BT;\n  node [fontsize=10];\n";

  std::map<std::uint32_t, std::vector<std::uint32_t>> by_level;
  for (std::uint32_t v = 0; v < net.vertex_count(); ++v) {
    by_level[net.vertex(v).level].push_back(v);
  }
  for (const auto& [level, vertices] : by_level) {
    if (options.rank_by_level) os << "  { rank=same; ";
    for (const auto v : vertices) {
      const auto& vertex = net.vertex(v);
      if (vertex.kind == VertexKind::kTerminal) {
        os << "v" << v << " [shape=box,label=\"t" << vertex.index_in_level
           << "\"]; ";
      } else {
        os << "v" << v << " [shape=circle,label=\"s" << vertex.level << "."
           << vertex.index_in_level << "\"]; ";
      }
    }
    if (options.rank_by_level) os << "}";
    os << "\n";
  }

  std::set<std::pair<std::uint32_t, std::uint32_t>> drawn;
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    const auto& ch = net.channel(c);
    if (options.merge_bidirectional) {
      const auto key = std::minmax(ch.src, ch.dst);
      if (!drawn.insert({key.first, key.second}).second) continue;
    }
    os << "  v" << ch.src << edge << "v" << ch.dst << ";\n";
  }
  os << "}\n";
}

}  // namespace nbclos
