#include "nbclos/topology/network.hpp"

#include <algorithm>

#include "nbclos/util/digits.hpp"

namespace nbclos {

std::uint32_t Network::add_vertex(VertexKind kind, std::uint32_t level,
                                  std::uint32_t index_in_level) {
  NBCLOS_REQUIRE(!finalized_, "network already finalized");
  vertices_.push_back(Vertex{kind, level, index_in_level});
  return static_cast<std::uint32_t>(vertices_.size() - 1);
}

std::uint32_t Network::add_channel(std::uint32_t src, std::uint32_t dst) {
  NBCLOS_REQUIRE(!finalized_, "network already finalized");
  // Validate at insertion time: a channel may only reference vertices that
  // already exist, so a malformed graph is rejected at the offending call
  // rather than corrupting the CSR build in finalize().
  NBCLOS_REQUIRE(src < vertices_.size(),
                 "channel source vertex " + std::to_string(src) +
                     " out of range (have " +
                     std::to_string(vertices_.size()) + " vertices)");
  NBCLOS_REQUIRE(dst < vertices_.size(),
                 "channel destination vertex " + std::to_string(dst) +
                     " out of range (have " +
                     std::to_string(vertices_.size()) + " vertices)");
  NBCLOS_REQUIRE(src != dst, "self-loop channel");
  channel_src_.push_back(src);
  channel_dst_.push_back(dst);
  return static_cast<std::uint32_t>(channel_src_.size() - 1);
}

void Network::reserve(std::uint32_t vertices, std::uint32_t channels) {
  NBCLOS_REQUIRE(!finalized_, "network already finalized");
  vertices_.reserve(vertices);
  channel_src_.reserve(channels);
  channel_dst_.reserve(channels);
}

void Network::finalize() {
  NBCLOS_REQUIRE(!finalized_, "network already finalized");
  NBCLOS_REQUIRE(!vertices_.empty(), "network needs at least one vertex");
  // Re-verify every endpoint before indexing: add_channel already rejects
  // bad ids, but fault tooling builds partial/degraded graphs through
  // evolving builder paths, and an out-of-range endpoint here would be
  // undefined behavior in the CSR counting pass below.
  for (std::size_t c = 0; c < channel_src_.size(); ++c) {
    NBCLOS_REQUIRE(channel_src_[c] < vertices_.size() &&
                       channel_dst_[c] < vertices_.size(),
                   "channel " + std::to_string(c) +
                       " references a vertex out of range");
  }
  const auto build_csr = [this](const std::vector<std::uint32_t>& endpoints) {
    Csr csr;
    csr.offsets.assign(vertices_.size() + 1, 0);
    for (const auto v : endpoints) ++csr.offsets[v + 1];
    for (std::size_t v = 0; v < vertices_.size(); ++v) {
      csr.offsets[v + 1] += csr.offsets[v];
    }
    csr.items.resize(endpoints.size());
    std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                      csr.offsets.end() - 1);
    for (std::uint32_t c = 0; c < endpoints.size(); ++c) {
      csr.items[cursor[endpoints[c]]++] = c;
    }
    return csr;
  };
  out_ = build_csr(channel_src_);
  in_ = build_csr(channel_dst_);
  channel_src_.shrink_to_fit();
  channel_dst_.shrink_to_fit();
  finalized_ = true;
}

std::span<const std::uint32_t> Network::out_channels(std::uint32_t v) const {
  NBCLOS_REQUIRE(finalized_, "network not finalized");
  NBCLOS_REQUIRE(v < vertices_.size(), "vertex id out of range");
  return out_.row(v);
}

std::span<const std::uint32_t> Network::in_channels(std::uint32_t v) const {
  NBCLOS_REQUIRE(finalized_, "network not finalized");
  NBCLOS_REQUIRE(v < vertices_.size(), "vertex id out of range");
  return in_.row(v);
}

std::optional<std::uint32_t> Network::find_channel(std::uint32_t src,
                                                   std::uint32_t dst) const {
  for (const auto c : out_channels(src)) {
    if (channel_dst_[c] == dst) return c;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> Network::terminals() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].kind == VertexKind::kTerminal) out.push_back(v);
  }
  return out;
}

Network build_network(const FoldedClos& ftree) {
  Network net;
  const FtreeNetworkMap map{ftree.params()};
  for (std::uint32_t leaf = 0; leaf < ftree.leaf_count(); ++leaf) {
    const auto v = net.add_vertex(VertexKind::kTerminal, 0, leaf);
    NBCLOS_ASSERT(v == map.terminal(LeafId{leaf}));
  }
  for (std::uint32_t b = 0; b < ftree.bottom_count(); ++b) {
    const auto v = net.add_vertex(VertexKind::kSwitch, 1, b);
    NBCLOS_ASSERT(v == map.bottom(BottomId{b}));
  }
  for (std::uint32_t t = 0; t < ftree.top_count(); ++t) {
    const auto v = net.add_vertex(VertexKind::kSwitch, 2, t);
    NBCLOS_ASSERT(v == map.top(TopId{t}));
  }
  // Channels in LinkId order so that channel id == FoldedClos LinkId.
  for (std::uint32_t leaf = 0; leaf < ftree.leaf_count(); ++leaf) {
    const auto c = net.add_channel(map.terminal(LeafId{leaf}),
                                   map.bottom(ftree.switch_of(LeafId{leaf})));
    NBCLOS_ASSERT(c == ftree.leaf_up_link(LeafId{leaf}).value);
  }
  for (std::uint32_t b = 0; b < ftree.bottom_count(); ++b) {
    for (std::uint32_t t = 0; t < ftree.top_count(); ++t) {
      const auto c = net.add_channel(map.bottom(BottomId{b}), map.top(TopId{t}));
      NBCLOS_ASSERT(c == ftree.up_link(BottomId{b}, TopId{t}).value);
    }
  }
  for (std::uint32_t t = 0; t < ftree.top_count(); ++t) {
    for (std::uint32_t b = 0; b < ftree.bottom_count(); ++b) {
      const auto c = net.add_channel(map.top(TopId{t}), map.bottom(BottomId{b}));
      NBCLOS_ASSERT(c == ftree.down_link(TopId{t}, BottomId{b}).value);
    }
  }
  for (std::uint32_t leaf = 0; leaf < ftree.leaf_count(); ++leaf) {
    const auto c = net.add_channel(map.bottom(ftree.switch_of(LeafId{leaf})),
                                   map.terminal(LeafId{leaf}));
    NBCLOS_ASSERT(c == ftree.leaf_down_link(LeafId{leaf}).value);
  }
  net.finalize();
  return net;
}

Network build_crossbar(std::uint32_t ports) {
  NBCLOS_REQUIRE(ports >= 2, "crossbar needs at least two ports");
  Network net;
  for (std::uint32_t p = 0; p < ports; ++p) {
    net.add_vertex(VertexKind::kTerminal, 0, p);
  }
  const auto sw = net.add_vertex(VertexKind::kSwitch, 1, 0);
  for (std::uint32_t p = 0; p < ports; ++p) net.add_channel(p, sw);
  for (std::uint32_t p = 0; p < ports; ++p) net.add_channel(sw, p);
  net.finalize();
  return net;
}

Network build_kary_ntree(std::uint32_t k, std::uint32_t h) {
  NBCLOS_REQUIRE(k >= 2, "k-ary n-tree needs k >= 2");
  NBCLOS_REQUIRE(h >= 1, "k-ary n-tree needs h >= 1");
  std::uint64_t terminals = 1;
  for (std::uint32_t i = 0; i < h; ++i) terminals *= k;
  const std::uint64_t per_level = terminals / k;  // k^(h-1)
  NBCLOS_REQUIRE(terminals + h * per_level <= UINT32_MAX, "tree too large");

  Network net;
  // Exact census up front: k^h terminals + h*k^(h-1) switches; 2 channels
  // per terminal attachment + 2 per (switch, up-neighbor) pair.  At 10^6
  // terminals the channel arrays alone are ~100 MB — growing them by
  // doubling would copy that several times over.
  const std::uint64_t switch_links =
      h >= 2 ? 2ULL * (h - 1) * per_level * k : 0;
  net.reserve(static_cast<std::uint32_t>(terminals + h * per_level),
              static_cast<std::uint32_t>(2 * terminals + switch_links));
  // Terminals: ids [0, k^h).
  for (std::uint32_t t = 0; t < terminals; ++t) {
    net.add_vertex(VertexKind::kTerminal, 0, t);
  }
  // Switch (level l, position w) -> vertex id terminals + l*per_level + w.
  const auto switch_vertex = [&](std::uint32_t level, std::uint32_t pos) {
    return static_cast<std::uint32_t>(terminals + level * per_level + pos);
  };
  for (std::uint32_t l = 0; l < h; ++l) {
    for (std::uint32_t w = 0; w < per_level; ++w) {
      const auto v = net.add_vertex(VertexKind::kSwitch, l + 1, w);
      NBCLOS_ASSERT(v == switch_vertex(l, w));
    }
  }
  // Terminal p attaches to level-0 switch floor(p / k), both directions.
  for (std::uint32_t p = 0; p < terminals; ++p) {
    const auto sw = switch_vertex(0, p / k);
    net.add_channel(p, sw);
    net.add_channel(sw, p);
  }
  // Switch (l, w) connects upward to (l+1, w') where the base-k digit
  // strings of w and w' agree except possibly in digit l.
  if (h >= 2) {
    const DigitCodec codec(k, h - 1);
    std::vector<std::uint32_t> digits(h - 1);  // hoisted: one buffer, no
                                               // per-(l, w) allocation
    for (std::uint32_t l = 0; l + 1 < h; ++l) {
      for (std::uint32_t w = 0; w < per_level; ++w) {
        std::uint64_t rest = w;
        for (auto& digit : digits) {
          digit = static_cast<std::uint32_t>(rest % k);
          rest /= k;
        }
        for (std::uint32_t d = 0; d < k; ++d) {
          digits[l] = d;
          const auto w_up =
              static_cast<std::uint32_t>(codec.compose(digits));
          net.add_channel(switch_vertex(l, w), switch_vertex(l + 1, w_up));
          net.add_channel(switch_vertex(l + 1, w_up), switch_vertex(l, w));
        }
      }
    }
  }
  net.finalize();
  return net;
}

}  // namespace nbclos
