#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

FoldedClos::FoldedClos(FtreeParams params) : params_(params) {
  NBCLOS_REQUIRE(params.n >= 1, "ftree needs at least one leaf per switch");
  NBCLOS_REQUIRE(params.m >= 1, "ftree needs at least one top switch");
  NBCLOS_REQUIRE(params.r >= 2, "ftree needs at least two bottom switches");
  // Guard the 32-bit id space (keeps LinkId arithmetic overflow-free).
  const std::uint64_t leafs = std::uint64_t{params.r} * params.n;
  const std::uint64_t links = 2 * leafs + 2 * std::uint64_t{params.r} * params.m;
  NBCLOS_REQUIRE(links <= UINT32_MAX, "topology too large for 32-bit ids");
}

LinkKind FoldedClos::kind_of(LinkId link) const {
  NBCLOS_REQUIRE(link.value < link_count(), "link id out of range");
  const std::uint32_t leafs = leaf_count();
  const std::uint32_t rm = r() * m();
  if (link.value < leafs) return LinkKind::kLeafUp;
  if (link.value < leafs + rm) return LinkKind::kUp;
  if (link.value < leafs + 2 * rm) return LinkKind::kDown;
  return LinkKind::kLeafDown;
}

FtreePath FoldedClos::direct_path(SDPair sd) const {
  NBCLOS_DEBUG_CHECK(!needs_top(sd), "direct path requires same bottom switch");
  NBCLOS_DEBUG_CHECK(sd.src != sd.dst, "self-loop SD pair");
  return FtreePath{sd, /*direct=*/true, TopId{0}};
}

FtreePath FoldedClos::cross_path(SDPair sd, TopId top) const {
  NBCLOS_DEBUG_CHECK(needs_top(sd), "cross path requires different switches");
  NBCLOS_DEBUG_CHECK(top.value < m(), "top switch out of range");
  return FtreePath{sd, /*direct=*/false, top};
}

std::vector<LinkId> FoldedClos::links_of(const FtreePath& path) const {
  std::vector<LinkId> links;
  if (path.direct) {
    links.reserve(2);
    links.push_back(leaf_up_link(path.sd.src));
    links.push_back(leaf_down_link(path.sd.dst));
    return links;
  }
  const BottomId v = switch_of(path.sd.src);
  const BottomId w = switch_of(path.sd.dst);
  links.reserve(4);
  links.push_back(leaf_up_link(path.sd.src));
  links.push_back(up_link(v, path.top));
  links.push_back(down_link(path.top, w));
  links.push_back(leaf_down_link(path.sd.dst));
  return links;
}

void FoldedClos::validate() const {
  // Leaf round-trips.
  for (std::uint32_t v = 0; v < r(); ++v) {
    for (std::uint32_t k = 0; k < n(); ++k) {
      const LeafId leaf_id = leaf(BottomId{v}, k);
      NBCLOS_ASSERT(switch_of(leaf_id).value == v);
      NBCLOS_ASSERT(local_of(leaf_id) == k);
    }
  }
  // Link ids are a bijection onto [0, link_count()) with correct kinds.
  std::vector<bool> seen(link_count(), false);
  const auto visit = [&](LinkId link, LinkKind expect) {
    NBCLOS_ASSERT(link.value < link_count());
    NBCLOS_ASSERT(!seen[link.value]);
    seen[link.value] = true;
    NBCLOS_ASSERT(kind_of(link) == expect);
  };
  for (std::uint32_t leaf_raw = 0; leaf_raw < leaf_count(); ++leaf_raw) {
    visit(leaf_up_link(LeafId{leaf_raw}), LinkKind::kLeafUp);
    visit(leaf_down_link(LeafId{leaf_raw}), LinkKind::kLeafDown);
  }
  for (std::uint32_t v = 0; v < r(); ++v) {
    for (std::uint32_t t = 0; t < m(); ++t) {
      visit(up_link(BottomId{v}, TopId{t}), LinkKind::kUp);
      visit(down_link(TopId{t}, BottomId{v}), LinkKind::kDown);
    }
  }
  for (const bool b : seen) NBCLOS_ASSERT(b);
}

}  // namespace nbclos
