#include "nbclos/topology/clos.hpp"

#include <unordered_map>

namespace nbclos {

ThreeStageClos::ThreeStageClos(std::uint32_t n, std::uint32_t m,
                               std::uint32_t r)
    : n_(n), m_(m), r_(r) {
  NBCLOS_REQUIRE(n >= 1 && m >= 1 && r >= 2, "invalid Clos parameters");
  NBCLOS_REQUIRE(std::uint64_t{2} * r * m <= UINT32_MAX, "Clos too large");
}

std::uint32_t ThreeStageClos::first_stage_link(std::uint32_t input_switch,
                                               std::uint32_t middle) const {
  NBCLOS_REQUIRE(input_switch < r_ && middle < m_, "link index out of range");
  return input_switch * m_ + middle;
}

std::uint32_t ThreeStageClos::second_stage_link(
    std::uint32_t middle, std::uint32_t output_switch) const {
  NBCLOS_REQUIRE(output_switch < r_ && middle < m_, "link index out of range");
  return r_ * m_ + middle * r_ + output_switch;
}

std::vector<std::uint32_t> ThreeStageClos::links_of(
    const ClosRoute& route) const {
  NBCLOS_REQUIRE(route.middle < m_, "middle switch out of range");
  const std::uint32_t in_sw = input_switch_of(route.connection.input_port);
  const std::uint32_t out_sw = output_switch_of(route.connection.output_port);
  return {first_stage_link(in_sw, route.middle),
          second_stage_link(route.middle, out_sw)};
}

std::uint64_t ThreeStageClos::conflict_count(
    const std::vector<ClosRoute>& routes) const {
  std::unordered_map<std::uint32_t, std::uint64_t> load;
  for (const auto& route : routes) {
    for (const auto link : links_of(route)) ++load[link];
  }
  std::uint64_t conflicts = 0;
  for (const auto& [link, count] : load) {
    conflicts += count * (count - 1) / 2;
  }
  return conflicts;
}

FtreePath ThreeStageClos::to_ftree_path(const ClosRoute& route,
                                        const FoldedClos& ftree) const {
  NBCLOS_REQUIRE(ftree.params() == folded_params(),
                 "ftree does not match this Clos network");
  const SDPair sd{LeafId{route.connection.input_port},
                  LeafId{route.connection.output_port}};
  if (!ftree.needs_top(sd)) return ftree.direct_path(sd);
  return ftree.cross_path(sd, TopId{route.middle});
}

}  // namespace nbclos
