#include "nbclos/sim/shard_exchange.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

namespace nbclos::sim {

namespace {
constexpr std::uint32_t kMaxShards = 64;

/// Parse a sysfs cpulist ("0-3,8,10-11") into cpu ids.  Malformed input
/// yields an empty list (callers fall back to the flat topology).
std::vector<std::uint32_t> parse_cpulist(const std::string& text) {
  std::vector<std::uint32_t> cpus;
  std::stringstream stream(text);
  std::string range;
  while (std::getline(stream, range, ',')) {
    if (range.empty()) continue;
    const auto dash = range.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(static_cast<std::uint32_t>(std::stoul(range)));
      } else {
        const auto lo =
            static_cast<std::uint32_t>(std::stoul(range.substr(0, dash)));
        const auto hi =
            static_cast<std::uint32_t>(std::stoul(range.substr(dash + 1)));
        for (std::uint32_t c = lo; c <= hi && c - lo < 4096; ++c) {
          cpus.push_back(c);
        }
      }
    } catch (...) {
      return {};
    }
  }
  return cpus;
}

}  // namespace

ShardPlan ShardPlan::build(const Network& net, std::uint32_t shards) {
  NBCLOS_REQUIRE(net.finalized(), "network must be finalized");
  NBCLOS_REQUIRE(shards >= 1, "shard count must be >= 1");
  ShardPlan plan;
  const std::uint32_t vertices = net.vertex_count();
  plan.shard_count =
      std::min({shards, kMaxShards, std::max<std::uint32_t>(vertices, 1)});

  // Balance by out-channel counts: a shard's arena holds queue, flight,
  // and arbitration state per owned channel, so cutting the contiguous
  // vertex range at equal out-channel prefix shares balances memory and
  // per-cycle work together.
  std::vector<std::uint64_t> prefix(vertices + 1, 0);
  for (std::uint32_t v = 0; v < vertices; ++v) {
    prefix[v + 1] = prefix[v] + net.out_channels(v).size();
  }
  plan.vertex_begin.reserve(plan.shard_count + 1);
  plan.vertex_begin.push_back(0);
  for (std::uint32_t s = 1; s < plan.shard_count; ++s) {
    const std::uint64_t target =
        prefix[vertices] * s / plan.shard_count;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    plan.vertex_begin.push_back(
        static_cast<std::uint32_t>(it - prefix.begin()));
  }
  plan.vertex_begin.push_back(vertices);

  std::vector<std::uint8_t> vertex_owner(vertices, 0);
  for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
    for (std::uint32_t v = plan.vertex_begin[s]; v < plan.vertex_begin[s + 1];
         ++v) {
      vertex_owner[v] = static_cast<std::uint8_t>(s);
    }
  }
  const std::uint32_t channels = net.channel_count();
  plan.channel_owner.resize(channels);
  plan.channel_local.resize(channels);
  plan.shard_channels.resize(plan.shard_count);
  for (std::uint32_t c = 0; c < channels; ++c) {
    const auto owner = vertex_owner[net.channel_src(c)];
    plan.channel_owner[c] = owner;
    plan.channel_local[c] =
        static_cast<std::uint32_t>(plan.shard_channels[owner].size());
    plan.shard_channels[owner].push_back(c);
  }
  return plan;
}

NumaTopology NumaTopology::detect() {
  NumaTopology topo;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  std::vector<std::uint32_t> available;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    for (std::uint32_t c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) available.push_back(c);
    }
  }
  if (available.empty()) available.push_back(0);
  const std::uint32_t max_cpu = available.back();
  topo.cpu_count = static_cast<std::uint32_t>(available.size());
  topo.node_of_cpu.assign(max_cpu + 1, 0);

  std::uint32_t nodes_seen = 0;
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::ifstream file("/sys/devices/system/node/node" + std::to_string(n) +
                       "/cpulist");
    if (!file.is_open()) break;
    std::string line;
    std::getline(file, line);
    for (const auto cpu : parse_cpulist(line)) {
      if (cpu < topo.node_of_cpu.size()) topo.node_of_cpu[cpu] = n;
    }
    ++nodes_seen;
  }
  topo.node_count = std::max<std::uint32_t>(nodes_seen, 1);

  // Pin order: available cpus, node-major, cpu ids ascending within a
  // node — shard s pins to pin_order[s % size], spreading consecutive
  // shards across a node's cpus before spilling to the next node.
  topo.pin_order = available;
  std::stable_sort(topo.pin_order.begin(), topo.pin_order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return topo.node_of_cpu[a] < topo.node_of_cpu[b];
                   });
#else
  topo.node_of_cpu.assign(1, 0);
  topo.pin_order.assign(1, 0);
#endif
  return topo;
}

bool pin_current_thread(std::uint32_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % CPU_SETSIZE, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::uint32_t current_numa_node(const NumaTopology& topo) {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0 && static_cast<std::size_t>(cpu) < topo.node_of_cpu.size()) {
    return topo.node_of_cpu[static_cast<std::size_t>(cpu)];
  }
#else
  (void)topo;
#endif
  return 0;
}

}  // namespace nbclos::sim
