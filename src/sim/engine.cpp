#include "nbclos/sim/engine.hpp"

#include <algorithm>

namespace nbclos::sim {

PacketSim::PacketSim(const Network& net, RoutingOracle& oracle,
                     const TrafficPattern& traffic, SimConfig config,
                     fault::DegradedView* degraded,
                     std::vector<fault::FaultEvent> fault_events)
    : net_(&net), oracle_(&oracle), traffic_(&traffic), config_(config),
      degraded_(degraded), fault_events_(std::move(fault_events)),
      channels_(net.channel_count()), queue_depth_(net.channel_count(), 0),
      rng_(config.seed) {
  NBCLOS_REQUIRE(net.finalized(), "network must be finalized");
  NBCLOS_REQUIRE(degraded_ == nullptr || &degraded_->network() == &net,
                 "degraded view was built over a different network");
  NBCLOS_REQUIRE(fault_events_.empty() || degraded_ != nullptr,
                 "fault events need a degraded view to apply to");
  std::stable_sort(fault_events_.begin(), fault_events_.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  NBCLOS_REQUIRE(config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
                 "injection rate must be in [0, 1] flits/cycle");
  NBCLOS_REQUIRE(config.packet_size >= 1, "packets need at least one flit");
  NBCLOS_REQUIRE(config.queue_capacity >= 1, "queues need capacity >= 1");
  terminal_vertices_ = net.terminals();
  NBCLOS_REQUIRE(traffic.terminal_count() == terminal_vertices_.size(),
                 "traffic pattern size does not match network");
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    NBCLOS_REQUIRE(terminal_vertices_[t] == t,
                   "terminals must be vertices [0, T) (library builders "
                   "guarantee this)");
  }
  flow_sequence_.assign(terminal_vertices_.size(), 0);
  delivered_per_source_.assign(terminal_vertices_.size(), 0);
  arrival_candidates_.resize(net.channel_count());
  rr_last_winner_.assign(net.channel_count(), 0);
  // A channel whose source vertex is a terminal is that terminal's NIC
  // send queue: unbounded, so offered load is never silently dropped.
  is_terminal_source_queue_.assign(net.channel_count(), false);
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    is_terminal_source_queue_[c] =
        net.vertex(net.channel(c).src).kind == VertexKind::kTerminal;
  }
}

void PacketSim::deliver(const Packet& packet) {
  ++delivered_packets_;
  if (!measuring_) return;
  // Throughput counts every delivery inside the measurement window —
  // at saturation the window mostly drains warmup backlog, and filtering
  // it out would underestimate the sustainable rate.
  delivered_measured_flits_ += packet.size_flits;
  // Terminal vertex ids equal their index in terminal_vertices_ for
  // every builder in this library (terminals are added first).
  delivered_per_source_[packet.src_terminal] += packet.size_flits;
  // Latency, by contrast, is only meaningful for packets that both
  // entered and left within measured, warmed-up conditions.
  if (packet.injected_cycle >= config_.warmup_cycles) {
    const auto latency = static_cast<double>(now_ - packet.injected_cycle);
    latency_.add(latency);
    latencies_.push_back(latency);
  }
}

void PacketSim::apply_due_faults() {
  bool applied = false;
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].cycle <= now_) {
    degraded_->apply(fault_events_[next_fault_]);
    ++next_fault_;
    applied = true;
  }
  if (!applied) return;
  // Purge packets stranded on channels that just died (a recovered channel
  // simply starts accepting traffic again; nothing to purge).
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    if (degraded_->channel_alive(c)) continue;
    auto& ch = channels_[c];
    dropped_packets_ += ch.queue.size() + (ch.in_flight_valid ? 1 : 0);
    ch.queue.clear();
    ch.in_flight_valid = false;
    if (!is_terminal_source_queue_[c]) queue_depth_[c] = 0;
  }
}

void PacketSim::step_arrivals() {
  const SimView view(*net_, queue_depth_);
  // Two-phase arrival with per-queue round-robin arbitration.  With a
  // fixed service order the lowest-id input wins every freed slot of a
  // contended queue and its siblings starve — an arbitration artifact,
  // not a network property.  Phase 1 collects, per target queue, the
  // channels whose head packet wants it; phase 2 admits them in circular
  // id order starting after the queue's previous winner.
  arrival_targets_.clear();
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    auto& ch = channels_[c];
    if (!ch.in_flight_valid || ch.arrival_cycle > now_) continue;
    const std::uint32_t at = net_->channel(c).dst;
    if (net_->vertex(at).kind == VertexKind::kTerminal) {
      NBCLOS_ASSERT(at == ch.in_flight.dst_terminal);
      deliver(ch.in_flight);
      ch.in_flight_valid = false;
      continue;
    }
    // Route at the switch; the oracle is re-consulted on every retry,
    // so adaptive policies can steer around persistent congestion.
    const auto next = oracle_->next_channel(view, at, ch.in_flight);
    if (next == fault::kNoRoute || !channel_usable(next)) {
      // No live route (fault-aware oracle) or a fault-oblivious oracle
      // picked a dead channel: the packet is lost.
      ++dropped_packets_;
      ch.in_flight_valid = false;
      continue;
    }
    NBCLOS_ASSERT(net_->channel(next).src == at);
    auto& waiting = arrival_candidates_[next];
    if (waiting.empty()) arrival_targets_.push_back(next);
    waiting.push_back(c);
  }
  for (const auto target : arrival_targets_) {
    auto& waiting = arrival_candidates_[target];
    // Serve in circular order starting after the last winner (credits
    // permitting); losers stall on their channels (backpressure).
    std::size_t start = 0;
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      if (waiting[i] > rr_last_winner_[target]) {
        start = i;
        break;
      }
    }
    for (std::size_t i = 0;
         i < waiting.size() && queue_depth_[target] < config_.queue_capacity;
         ++i) {
      const auto c = waiting[(start + i) % waiting.size()];
      auto& ch = channels_[c];
      channels_[target].queue.push_back(ch.in_flight);
      ++queue_depth_[target];
      ch.in_flight_valid = false;
      rr_last_winner_[target] = c;
    }
    waiting.clear();
  }
}

void PacketSim::step_transmissions() {
  for (std::uint32_t c = 0; c < channels_.size(); ++c) {
    auto& ch = channels_[c];
    if (ch.in_flight_valid || ch.queue.empty()) continue;
    if (!channel_usable(c)) continue;  // dead channels do not transmit
    ch.in_flight = ch.queue.front();
    ch.queue.pop_front();
    if (!is_terminal_source_queue_[c]) --queue_depth_[c];
    ch.in_flight_valid = true;
    ch.arrival_cycle = now_ + ch.in_flight.size_flits;
  }
}

void PacketSim::step_injection() {
  const double packet_rate =
      config_.injection_rate / static_cast<double>(config_.packet_size);
  const SimView view(*net_, queue_depth_);
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    if (!rng_.bernoulli(packet_rate)) continue;
    const auto dst = traffic_->destination(t, rng_);
    if (!dst.has_value()) continue;
    Packet packet;
    packet.id = next_packet_id_++;
    packet.src_terminal = terminal_vertices_[t];
    packet.dst_terminal = terminal_vertices_[*dst];
    packet.size_flits = config_.packet_size;
    packet.injected_cycle = now_;
    packet.flow_sequence = flow_sequence_[t]++;
    const auto channel =
        oracle_->next_channel(view, terminal_vertices_[t], packet);
    ++injected_;
    if (channel == fault::kNoRoute || !channel_usable(channel)) {
      // Offered but lost: the terminal's uplink is dead.
      ++dropped_packets_;
      continue;
    }
    // Terminal source queues are unbounded: depth is not tracked against
    // capacity, matching an infinite NIC send queue.
    channels_[channel].queue.push_back(packet);
  }
}

SimResult PacketSim::run() {
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  for (now_ = 0; now_ < total; ++now_) {
    measuring_ = now_ >= config_.warmup_cycles;
    if (degraded_ != nullptr) apply_due_faults();
    step_arrivals();
    step_transmissions();
    step_injection();
    if (measuring_) {
      // Sample switch queue depths (terminal source queues excluded).
      std::uint64_t sum = 0;
      std::uint64_t count = 0;
      for (std::uint32_t c = 0; c < channels_.size(); ++c) {
        if (is_terminal_source_queue_[c]) continue;
        sum += queue_depth_[c];
        ++count;
      }
      if (count > 0) {
        queue_depth_samples_.add(static_cast<double>(sum) /
                                 static_cast<double>(count));
      }
    }
  }

  SimResult result;
  result.offered_load = config_.injection_rate;
  result.injected_packets = injected_;
  result.delivered_packets = delivered_packets_;
  result.dropped_packets = dropped_packets_;
  result.accepted_throughput =
      static_cast<double>(delivered_measured_flits_) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(terminal_vertices_.size()));
  result.mean_latency = latency_.mean();
  if (!latencies_.empty()) {
    auto sorted = latencies_;
    std::sort(sorted.begin(), sorted.end());
    const auto idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(sorted.size() - 1));
    result.p99_latency = sorted[idx];
  }
  result.mean_switch_queue_depth = queue_depth_samples_.mean();
  // Fairness extremes over sources that injected anything.
  bool first_flow = true;
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    if (flow_sequence_[t] == 0) continue;
    const double rate = static_cast<double>(delivered_per_source_[t]) /
                        static_cast<double>(config_.measure_cycles);
    if (first_flow) {
      result.min_flow_throughput = rate;
      result.max_flow_throughput = rate;
      first_flow = false;
    } else {
      result.min_flow_throughput = std::min(result.min_flow_throughput, rate);
      result.max_flow_throughput = std::max(result.max_flow_throughput, rate);
    }
  }
  return result;
}

double find_saturation_load(const Network& net, RoutingOracle& oracle,
                            const TrafficPattern& traffic,
                            const SimConfig& base, std::uint32_t iterations) {
  double lo = 0.0;
  double hi = 1.0;
  // Check full load first: nonblocking fabrics sustain it and we can
  // return without bisection error.
  {
    SimConfig config = base;
    config.injection_rate = 1.0;
    PacketSim sim(net, oracle, traffic, config);
    if (!sim.run().saturated()) return 1.0;
  }
  for (std::uint32_t i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    SimConfig config = base;
    config.injection_rate = mid;
    PacketSim sim(net, oracle, traffic, config);
    if (sim.run().saturated()) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

std::vector<SimResult> load_sweep(const Network& net, RoutingOracle& oracle,
                                  const TrafficPattern& traffic,
                                  const SimConfig& base,
                                  const std::vector<double>& rates) {
  std::vector<SimResult> results;
  results.reserve(rates.size());
  for (const double rate : rates) {
    SimConfig config = base;
    config.injection_rate = rate;
    PacketSim sim(net, oracle, traffic, config);
    results.push_back(sim.run());
  }
  return results;
}

}  // namespace nbclos::sim
