#include "nbclos/sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "nbclos/obs/metrics.hpp"
#include "nbclos/sim/injection_rng.hpp"

namespace nbclos::sim {

namespace {

/// Initial capacity of a terminal NIC ring; grows by doubling, so the
/// capacity is always a power of two and wrap-around is a mask.
constexpr std::uint32_t kTermRingInitialCapacity = 16;

/// Per-run oracle seed for (sweep seed, phase tag, run index) —
/// decorrelated via SplitMix64 so neighboring runs share no stream
/// structure (same discipline as analysis::parallel / fault::sweep).
std::uint64_t sweep_run_seed(std::uint64_t seed, std::uint64_t tag,
                             std::uint64_t index) {
  SplitMix64 sm(seed ^ (tag << 32) ^ index);
  return sm.next();
}

}  // namespace

PacketSim::PacketSim(const Network& net, RoutingOracle& oracle,
                     const TrafficPattern& traffic, SimConfig config,
                     fault::DegradedView* degraded,
                     std::vector<fault::FaultEvent> fault_events)
    : net_(&net), oracle_(&oracle), traffic_(&traffic), config_(config),
      degraded_(degraded), fault_events_(std::move(fault_events)),
      flight_(net.channel_count()),
      q_head_(net.channel_count(), 0), q_size_(net.channel_count(), 0),
      pool_base_(net.channel_count(), 0),
      queue_depth_(net.channel_count(), 0),
      in_flying_(net.channel_count(), 0), in_sendable_(net.channel_count(), 0),
      channel_dst_(net.channel_count(), 0),
      dst_is_terminal_(net.channel_count(), 0),
      is_terminal_source_queue_(net.channel_count(), 0),
      rng_(config.seed),
      packet_rate_(config.injection_rate /
                   static_cast<double>(config.packet_size)),
      view_(net, queue_depth_),
      latency_hist_(config.warmup_cycles + config.measure_cycles) {
  NBCLOS_REQUIRE(net.finalized(), "network must be finalized");
  NBCLOS_REQUIRE(degraded_ == nullptr || &degraded_->network() == &net,
                 "degraded view was built over a different network");
  NBCLOS_REQUIRE(fault_events_.empty() || degraded_ != nullptr,
                 "fault events need a degraded view to apply to");
  std::stable_sort(fault_events_.begin(), fault_events_.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  NBCLOS_REQUIRE(config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
                 "injection rate must be in [0, 1] flits/cycle");
  NBCLOS_REQUIRE(config.packet_size >= 1, "packets need at least one flit");
  NBCLOS_REQUIRE(config.queue_capacity >= 1, "queues need capacity >= 1");
  terminal_vertices_ = net.terminals();
  NBCLOS_REQUIRE(traffic.terminal_count() == terminal_vertices_.size(),
                 "traffic pattern size does not match network");
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    NBCLOS_REQUIRE(terminal_vertices_[t] == t,
                   "terminals must be vertices [0, T) (library builders "
                   "guarantee this)");
  }
  flow_sequence_.assign(terminal_vertices_.size(), 0);
  delivered_per_source_.assign(terminal_vertices_.size(), 0);
  arrival_candidates_.resize(net.channel_count());
  rr_last_winner_.assign(net.channel_count(), 0);
  // A channel whose source vertex is a terminal is that terminal's NIC
  // send queue: unbounded, so offered load is never silently dropped.
  // Carve the flat queue pool: switch channels get fixed-capacity slices
  // of one contiguous allocation, terminal channels growable rings.
  const auto slice = std::bit_ceil(config.queue_capacity);
  switch_slice_mask_ = slice - 1;
  std::uint32_t switch_channels = 0;
  std::uint32_t term_channels = 0;
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    const auto& ch = net.channel(c);
    channel_dst_[c] = ch.dst;
    dst_is_terminal_[c] = net.vertex(ch.dst).kind == VertexKind::kTerminal;
    if (net.vertex(ch.src).kind == VertexKind::kTerminal) {
      is_terminal_source_queue_[c] = 1;
      pool_base_[c] = term_channels++;
    } else {
      pool_base_[c] = switch_channels * slice;
      ++switch_channels;
    }
  }
  switch_pool_.resize(std::size_t{switch_channels} * slice);
  term_rings_.resize(term_channels);
  switch_channel_count_ = switch_channels;
  flying_.reserve(net.channel_count());
  sendable_.reserve(net.channel_count());
  link_busy_flits_.assign(net.channel_count(), 0);
  if constexpr (obs::kEnabled) {
    busy_counter_ = &obs::metrics().counter("sim.link.busy_flit_cycles");
    arm_recorder();
  }
}

void PacketSim::arm_recorder() {
  if (!config_.record_timeseries) return;
  obs::FlightRecorder::Config rec;
  rec.cadence = config_.record_cadence;
  rec.ring_capacity = config_.record_ring_capacity;
  rec.shards = 1;
  recorder_.configure(rec);
  rec_queue_depth_ =
      recorder_.series("sim.queue.depth_sum", obs::SeriesAgg::kSum);
  rec_active_flying_ =
      recorder_.series("sim.active.flying", obs::SeriesAgg::kSum);
  rec_active_sendable_ =
      recorder_.series("sim.active.sendable", obs::SeriesAgg::kSum);
  rec_busy_flits_ =
      recorder_.series("sim.link.busy_flits", obs::SeriesAgg::kSum);
  rec_injected_ =
      recorder_.series("sim.packets.injected", obs::SeriesAgg::kSum);
  rec_delivered_ =
      recorder_.series("sim.packets.delivered", obs::SeriesAgg::kSum);
}

void PacketSim::sample_recorder() {
  recorder_.record(rec_queue_depth_, 0, now_,
                   static_cast<std::int64_t>(switch_depth_sum_));
  recorder_.record(rec_active_flying_, 0, now_,
                   static_cast<std::int64_t>(flying_.size()));
  recorder_.record(rec_active_sendable_, 0, now_,
                   static_cast<std::int64_t>(sendable_.size()));
  recorder_.record(rec_busy_flits_, 0, now_,
                   static_cast<std::int64_t>(busy_flit_total_));
  recorder_.record(rec_injected_, 0, now_,
                   static_cast<std::int64_t>(injected_));
  recorder_.record(rec_delivered_, 0, now_,
                   static_cast<std::int64_t>(delivered_packets_));
}

void PacketSim::queue_push(std::uint32_t channel, const Packet& packet) {
  if (is_terminal_source_queue_[channel]) {
    auto& ring = term_rings_[pool_base_[channel]];
    if (q_size_[channel] == ring.size()) {
      // Full (or first use): double and relinearize so head lands at 0.
      std::vector<Packet> bigger(
          ring.empty() ? kTermRingInitialCapacity : ring.size() * 2);
      for (std::uint32_t i = 0; i < q_size_[channel]; ++i) {
        bigger[i] = ring[(q_head_[channel] + i) & (ring.size() - 1)];
      }
      ring = std::move(bigger);
      q_head_[channel] = 0;
    }
    ring[(q_head_[channel] + q_size_[channel]) & (ring.size() - 1)] = packet;
  } else {
    switch_pool_[pool_base_[channel] +
                 ((q_head_[channel] + q_size_[channel]) &
                  switch_slice_mask_)] = packet;
    ++queue_depth_[channel];
    ++switch_depth_sum_;
  }
  ++q_size_[channel];
  if (!in_sendable_[channel]) {
    in_sendable_[channel] = 1;
    sendable_.push_back(channel);
  }
}

Packet PacketSim::queue_pop(std::uint32_t channel) {
  NBCLOS_ASSERT(q_size_[channel] > 0);
  Packet packet;
  if (is_terminal_source_queue_[channel]) {
    auto& ring = term_rings_[pool_base_[channel]];
    packet = ring[q_head_[channel]];
    q_head_[channel] = (q_head_[channel] + 1) &
                       (static_cast<std::uint32_t>(ring.size()) - 1);
  } else {
    packet = switch_pool_[pool_base_[channel] + q_head_[channel]];
    q_head_[channel] = (q_head_[channel] + 1) & switch_slice_mask_;
    --queue_depth_[channel];
    --switch_depth_sum_;
  }
  --q_size_[channel];
  return packet;
}

void PacketSim::queue_clear(std::uint32_t channel) {
  if (!is_terminal_source_queue_[channel]) {
    switch_depth_sum_ -= queue_depth_[channel];
    queue_depth_[channel] = 0;
  }
  q_size_[channel] = 0;
  q_head_[channel] = 0;
}

void PacketSim::deliver(const Packet& packet) {
  ++delivered_packets_;
  if (!measuring_) return;
  // Throughput counts every delivery inside the measurement window —
  // at saturation the window mostly drains warmup backlog, and filtering
  // it out would underestimate the sustainable rate.
  delivered_measured_flits_ += packet.size_flits;
  // Terminal vertex ids equal their index in terminal_vertices_ for
  // every builder in this library (terminals are added first).
  delivered_per_source_[packet.src_terminal] += packet.size_flits;
  // Latency, by contrast, is only meaningful for packets that both
  // entered and left within measured, warmed-up conditions.
  if (packet.injected_cycle >= config_.warmup_cycles) {
    const std::uint64_t latency = now_ - packet.injected_cycle;
    latency_.add(static_cast<double>(latency));
    latency_sum_ += latency;
    ++latency_count_;
    latency_hist_.add(latency);
  }
}

void PacketSim::apply_due_faults() {
  bool applied = false;
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].cycle <= now_) {
    degraded_->apply(fault_events_[next_fault_]);
    ++next_fault_;
    applied = true;
  }
  if (!applied) return;
  // Purge packets stranded on channels that just died (a recovered channel
  // simply starts accepting traffic again; nothing to purge).  Every
  // in-flight packet sits on a channel in flying_ and every queued packet
  // on one in sendable_, so the purge only touches active channels; the
  // invalidated entries are compacted out at the next sweep.
  for (const auto c : flying_) {
    if (flight_[c].valid && !degraded_->channel_alive(c)) {
      ++dropped_packets_;
      flight_[c].valid = false;
    }
  }
  for (const auto c : sendable_) {
    if (q_size_[c] > 0 && !degraded_->channel_alive(c)) {
      dropped_packets_ += q_size_[c];
      queue_clear(c);
    }
  }
}

void PacketSim::step_arrivals() {
  // Two-phase arrival with per-queue round-robin arbitration.  With a
  // fixed service order the lowest-id input wins every freed slot of a
  // contended queue and its siblings starve — an arbitration artifact,
  // not a network property.  Phase 1 collects, per target queue, the
  // channels whose head packet wants it; phase 2 admits them in circular
  // id order starting after the queue's previous winner.
  //
  // Sorting restores ascending channel-id order (appends in the other
  // steps scramble it), so oracles are consulted in the same order as a
  // full channel scan — required for bit-reproducibility.
  std::sort(flying_.begin(), flying_.end());
  arrival_targets_.clear();
  std::size_t keep = 0;
  const std::size_t flying_count = flying_.size();
  for (std::size_t i = 0; i < flying_count; ++i) {
    const auto c = flying_[i];
    auto& fl = flight_[c];
    if (!fl.valid) {  // purged by a fault since the last sweep
      in_flying_[c] = 0;
      continue;
    }
    if (fl.arrival_cycle > now_) {
      flying_[keep++] = c;
      continue;
    }
    if (dst_is_terminal_[c]) {
      NBCLOS_ASSERT(channel_dst_[c] == fl.packet.dst_terminal);
      deliver(fl.packet);
      fl.valid = false;
      in_flying_[c] = 0;
      continue;
    }
    // Route at the switch; the oracle is re-consulted on every retry,
    // so adaptive policies can steer around persistent congestion.
    const std::uint32_t at = channel_dst_[c];
    ++oracle_calls_;
    const auto next = oracle_->next_channel(view_, at, fl.packet);
    if (next == fault::kNoRoute || !channel_usable(next)) {
      // No live route (fault-aware oracle) or a fault-oblivious oracle
      // picked a dead channel: the packet is lost.
      ++dropped_packets_;
      fl.valid = false;
      in_flying_[c] = 0;
      continue;
    }
    NBCLOS_ASSERT(net_->channel(next).src == at);
    // Candidates leave the kept range; phase 2 re-appends the losers.
    auto& waiting = arrival_candidates_[next];
    if (waiting.empty()) arrival_targets_.push_back(next);
    waiting.push_back(c);
  }
  flying_.resize(keep);
  for (const auto target : arrival_targets_) {
    auto& waiting = arrival_candidates_[target];
    // Serve in circular order starting after the last winner (credits
    // permitting); losers stall on their channels (backpressure).
    std::size_t start = 0;
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      if (waiting[i] > rr_last_winner_[target]) {
        start = i;
        break;
      }
    }
    std::size_t i = 0;
    for (; i < waiting.size() && queue_depth_[target] < config_.queue_capacity;
         ++i) {
      const auto c = waiting[(start + i) % waiting.size()];
      queue_push(target, flight_[c].packet);
      flight_[c].valid = false;
      in_flying_[c] = 0;
      rr_last_winner_[target] = c;
    }
    for (; i < waiting.size(); ++i) {
      flying_.push_back(waiting[(start + i) % waiting.size()]);
    }
    waiting.clear();
  }
}

void PacketSim::step_transmissions() {
  std::sort(sendable_.begin(), sendable_.end());
  std::size_t keep = 0;
  const std::size_t sendable_count = sendable_.size();
  for (std::size_t i = 0; i < sendable_count; ++i) {
    const auto c = sendable_[i];
    if (q_size_[c] == 0) {  // drained or fault-purged since the last sweep
      in_sendable_[c] = 0;
      continue;
    }
    auto& fl = flight_[c];
    if (!fl.valid && channel_usable(c)) {  // dead channels do not transmit
      fl.packet = queue_pop(c);
      fl.valid = true;
      fl.arrival_cycle = now_ + fl.packet.size_flits;
      // The channel is now busy for size_flits cycles — the whole-run sum
      // is the per-link utilization report (link_utilization()); the
      // running total feeds the mid-run counter flush and the
      // `sim.link.busy_flits` recorder series.
      link_busy_flits_[c] += fl.packet.size_flits;
      busy_flit_total_ += fl.packet.size_flits;
      if (!in_flying_[c]) {
        in_flying_[c] = 1;
        flying_.push_back(c);
      }
      if (q_size_[c] == 0) {
        in_sendable_[c] = 0;
        continue;
      }
    }
    sendable_[keep++] = c;
  }
  sendable_.resize(keep);
}

void PacketSim::step_injection() {
  if (config_.counter_injection) {
    step_injection_counter();
    return;
  }
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    if (!rng_.bernoulli(packet_rate_)) continue;
    const auto dst = traffic_->destination(t, rng_);
    if (!dst.has_value()) continue;
    Packet packet;
    packet.id = next_packet_id_++;
    packet.src_terminal = terminal_vertices_[t];
    packet.dst_terminal = terminal_vertices_[*dst];
    packet.size_flits = config_.packet_size;
    packet.injected_cycle = now_;
    packet.flow_sequence = flow_sequence_[t]++;
    ++oracle_calls_;
    const auto channel =
        oracle_->next_channel(view_, terminal_vertices_[t], packet);
    ++injected_;
    if (channel == fault::kNoRoute || !channel_usable(channel)) {
      // Offered but lost: the terminal's uplink is dead.
      ++dropped_packets_;
      continue;
    }
    // Terminal source queues are unbounded: depth is not tracked against
    // capacity, matching an infinite NIC send queue.
    queue_push(channel, packet);
  }
}

void PacketSim::step_injection_counter() {
  // Counter-based injection (SimConfig::counter_injection): the engine's
  // sequential rng_ is never touched, and each terminal's draws come from
  // a generator keyed purely by (seed, cycle, terminal) — the identical
  // stream ShardedSim's workers produce, whichever shard owns `t`.
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    SplitMix64 sm(injection_counter_state(config_.seed, now_, t));
    if (!injection_bernoulli(sm, packet_rate_)) continue;
    Xoshiro256 dest_rng(sm.next());
    const auto dst = traffic_->destination(t, dest_rng);
    if (!dst.has_value()) continue;
    Packet packet;
    packet.id = next_packet_id_++;
    packet.src_terminal = terminal_vertices_[t];
    packet.dst_terminal = terminal_vertices_[*dst];
    packet.size_flits = config_.packet_size;
    packet.injected_cycle = now_;
    packet.flow_sequence = flow_sequence_[t]++;
    ++oracle_calls_;
    const auto channel =
        oracle_->next_channel(view_, terminal_vertices_[t], packet);
    ++injected_;
    if (channel == fault::kNoRoute || !channel_usable(channel)) {
      ++dropped_packets_;
      continue;
    }
    queue_push(channel, packet);
  }
}

SimResult PacketSim::run() {
  obs::ScopedSpan span("sim.run", "sim");
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  for (now_ = 0; now_ < total; ++now_) {
    measuring_ = now_ >= config_.warmup_cycles;
    if (degraded_ != nullptr) apply_due_faults();
    // Sampled per-phase timing: every 64th cycle when obs is on.  The
    // clock reads never touch simulation state, so the timed and untimed
    // paths produce bit-identical results.
    bool timed = false;
    if constexpr (obs::kEnabled) {
      timed = (now_ & 63u) == 0 && obs::enabled();
    }
    if (timed) {
      using clock = std::chrono::steady_clock;
      const auto ns = [](clock::duration d) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
      };
      const auto t0 = clock::now();
      step_arrivals();
      const auto t1 = clock::now();
      step_transmissions();
      const auto t2 = clock::now();
      step_injection();
      const auto t3 = clock::now();
      phase_ns_[0] += ns(t1 - t0);
      phase_ns_[1] += ns(t2 - t1);
      phase_ns_[2] += ns(t3 - t2);
      ++phase_samples_;
    } else {
      step_arrivals();
      step_transmissions();
      step_injection();
    }
    if constexpr (obs::kEnabled) {
      active_flying_sum_ += flying_.size();
      active_sendable_sum_ += sendable_.size();
      // Exact mid-run busy-flit totals: flush the running sum into the
      // registry counter on the same 64-cycle cadence as the phase
      // timers, so a concurrent snapshot (metrics-serve) is never a full
      // run stale.
      if ((now_ & 63u) == 0 && obs::enabled()) flush_busy_flits();
      if (recorder_.want(now_)) sample_recorder();
    }
    if (measuring_ && switch_channel_count_ > 0) {
      // Sample switch queue depths (terminal source queues excluded);
      // the sum is maintained incrementally by queue_push/pop/clear.
      queue_depth_samples_.add(static_cast<double>(switch_depth_sum_) /
                               static_cast<double>(switch_channel_count_));
    }
  }

  SimResult result;
  result.offered_load = config_.injection_rate;
  result.injected_packets = injected_;
  result.delivered_packets = delivered_packets_;
  result.dropped_packets = dropped_packets_;
  result.accepted_throughput =
      static_cast<double>(delivered_measured_flits_) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(terminal_vertices_.size()));
  // Under counter injection the mean comes from the exact integer sums —
  // the order-independent arithmetic ShardedSim merges with, so the two
  // engines agree bit-for-bit.  The legacy Welford mean is part of the
  // recorded golden results and stays the default.
  result.mean_latency =
      config_.counter_injection
          ? (latency_count_ > 0 ? static_cast<double>(latency_sum_) /
                                      static_cast<double>(latency_count_)
                                : 0.0)
          : latency_.mean();
  result.latency_bucket_width =
      static_cast<double>(latency_hist_.bucket_width());
  if (latency_hist_.count() > 0) {
    result.p50_latency = latency_hist_.quantile(0.50);
    result.p99_latency = latency_hist_.quantile(0.99);
    result.p999_latency = latency_hist_.quantile(0.999);
  }
  result.mean_switch_queue_depth = queue_depth_samples_.mean();
  // Fairness extremes over sources that injected anything.
  bool first_flow = true;
  for (std::uint32_t t = 0; t < terminal_vertices_.size(); ++t) {
    if (flow_sequence_[t] == 0) continue;
    const double rate = static_cast<double>(delivered_per_source_[t]) /
                        static_cast<double>(config_.measure_cycles);
    if (first_flow) {
      result.min_flow_throughput = rate;
      result.max_flow_throughput = rate;
      first_flow = false;
    } else {
      result.min_flow_throughput = std::min(result.min_flow_throughput, rate);
      result.max_flow_throughput = std::max(result.max_flow_throughput, rate);
    }
  }
  if constexpr (obs::kEnabled) {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    flush_obs(wall.count());
    span.arg("cycles", static_cast<double>(total));
    span.arg("delivered", static_cast<double>(delivered_packets_));
    span.arg("rate", config_.injection_rate);
  }
  return result;
}

LinkUtilization PacketSim::link_utilization() const {
  LinkUtilization report;
  const std::uint64_t cycles = config_.warmup_cycles + config_.measure_cycles;
  report.busy_fraction.resize(link_busy_flits_.size(), 0.0);
  if (cycles == 0) return report;
  double sum = 0.0;
  for (std::size_t c = 0; c < link_busy_flits_.size(); ++c) {
    // A packet transmitting across the run boundary counts its full
    // length, so clamp: a link is never more than 100% busy.
    const double frac =
        std::min(1.0, static_cast<double>(link_busy_flits_[c]) /
                          static_cast<double>(cycles));
    report.busy_fraction[c] = frac;
    sum += frac;
    if (frac > report.max) {
      report.max = frac;
      report.max_channel = static_cast<std::uint32_t>(c);
    }
  }
  if (!report.busy_fraction.empty()) {
    report.mean = sum / static_cast<double>(report.busy_fraction.size());
  }
  return report;
}

void PacketSim::flush_busy_flits() {
  if (busy_counter_ == nullptr) return;  // NBCLOS_OBS=OFF build
  const std::uint64_t delta = busy_flit_total_ - busy_flits_flushed_;
  if (delta == 0) return;
  busy_counter_->add(delta);
  // The watermark only advances when the counter actually recorded the
  // delta; while recording is paused the add above is dropped and the
  // flits stay pending for the next enabled flush.
  if (obs::enabled()) busy_flits_flushed_ = busy_flit_total_;
}

void PacketSim::flush_obs(double wall_seconds) {
  if (!obs::enabled()) return;
  auto& m = obs::metrics();
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  m.counter("sim.runs").add(1);
  m.counter("sim.cycles").add(total);
  m.counter("sim.packets.injected").add(injected_);
  m.counter("sim.packets.delivered").add(delivered_packets_);
  m.counter("sim.packets.dropped").add(dropped_packets_);
  m.counter("sim.oracle.calls").add(oracle_calls_);
  // Active-channel counts: channel-cycles divided by sim.cycles gives the
  // mean number of simultaneously active channels.
  m.counter("sim.active.flying_channel_cycles").add(active_flying_sum_);
  m.counter("sim.active.sendable_channel_cycles").add(active_sendable_sum_);
  // Queue depth at end of run plus the high-water over runs (gauge max).
  m.gauge("sim.queue.switch_depth_sum")
      .set(static_cast<std::int64_t>(switch_depth_sum_));
  // Link utilization: the busy flit-cycle counter is flushed on the
  // 64-cycle cadence during the run; this final flush drains whatever
  // accumulated since the last cadence boundary.
  flush_busy_flits();
  const auto util = link_utilization();
  m.gauge("sim.link.max_util_ppm")
      .set(static_cast<std::int64_t>(util.max * 1e6));
  // Sampled per-phase cycle cost, nanoseconds per sampled cycle.
  if (phase_samples_ > 0) {
    const std::uint64_t cap = 1'000'000;  // 1 ms/cycle ceiling per phase
    m.histogram("sim.phase.arrivals_ns", cap)
        .record(phase_ns_[0] / phase_samples_);
    m.histogram("sim.phase.transmissions_ns", cap)
        .record(phase_ns_[1] / phase_samples_);
    m.histogram("sim.phase.injection_ns", cap)
        .record(phase_ns_[2] / phase_samples_);
  }
  m.counter("sim.wall_us")
      .add(static_cast<std::uint64_t>(wall_seconds * 1e6));
}

// --- sweep drivers ----------------------------------------------------

namespace {

/// One sweep run with a worker-private oracle (and, when faulted, a
/// run-private copy of the initial degraded view).
SimResult run_single(const Network& net, const OracleFactory& factory,
                     const TrafficPattern& traffic, SimConfig config,
                     std::uint64_t run_seed,
                     const fault::DegradedView* degraded,
                     const std::vector<fault::FaultEvent>& fault_events) {
  obs::ScopedSpan span("sweep.probe", "sweep");
  span.arg("rate", config.injection_rate);
  const auto run = [&] {
    if (degraded == nullptr) {
      const auto oracle = factory(run_seed, nullptr);
      PacketSim sim(net, *oracle, traffic, config);
      return sim.run();
    }
    fault::DegradedView view = *degraded;
    const auto oracle = factory(run_seed, &view);
    PacketSim sim(net, *oracle, traffic, config, &view, fault_events);
    return sim.run();
  };
  if constexpr (obs::kEnabled) {
    if (obs::enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      SimResult result = run();
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0);
      // Per-probe wall time; 10 s ceiling covers every config we sweep.
      obs::metrics()
          .histogram("sweep.probe_us", 10'000'000)
          .record(static_cast<std::uint64_t>(us.count()));
      span.arg("throughput", result.accepted_throughput);
      return result;
    }
  }
  return run();
}

}  // namespace

std::vector<SimResult> load_sweep(
    const Network& net, RoutingOracle& oracle, const TrafficPattern& traffic,
    const SimConfig& base, const std::vector<double>& rates,
    fault::DegradedView* degraded,
    const std::vector<fault::FaultEvent>& fault_events) {
  NBCLOS_REQUIRE(fault_events.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  std::vector<SimResult> results;
  results.reserve(rates.size());
  const fault::DegradedView snapshot =
      degraded != nullptr ? *degraded : fault::DegradedView(net);
  for (const double rate : rates) {
    SimConfig config = base;
    config.injection_rate = rate;
    if (degraded != nullptr) *degraded = snapshot;
    PacketSim sim(net, oracle, traffic, config, degraded, fault_events);
    results.push_back(sim.run());
  }
  if (degraded != nullptr) *degraded = snapshot;
  return results;
}

std::vector<SimResult> load_sweep(
    const Network& net, const OracleFactory& factory,
    const TrafficPattern& traffic, const SimConfig& base,
    const std::vector<double>& rates, ThreadPool* pool,
    const fault::DegradedView* degraded,
    const std::vector<fault::FaultEvent>& fault_events) {
  NBCLOS_REQUIRE(fault_events.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  std::vector<SimResult> results(rates.size());
  obs::ScopedSpan sweep_span("sim.load_sweep", "sweep");
  sweep_span.arg("rates", static_cast<double>(rates.size()));
  const auto run_at = [&](std::size_t i) {
    SimConfig config = base;
    config.injection_rate = rates[i];
    results[i] = run_single(net, factory, traffic, config,
                            sweep_run_seed(base.seed, 0x10adu, i), degraded,
                            fault_events);
  };
  if (pool != nullptr && rates.size() > 1) {
    pool->parallel_for(0, rates.size(), run_at);
  } else {
    for (std::size_t i = 0; i < rates.size(); ++i) run_at(i);
  }
  return results;
}

double find_saturation_load(const Network& net, RoutingOracle& oracle,
                            const TrafficPattern& traffic,
                            const SimConfig& base, std::uint32_t iterations,
                            fault::DegradedView* degraded,
                            const std::vector<fault::FaultEvent>& fault_events) {
  NBCLOS_REQUIRE(fault_events.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  const fault::DegradedView snapshot =
      degraded != nullptr ? *degraded : fault::DegradedView(net);
  const auto probe = [&](double load) {
    SimConfig config = base;
    config.injection_rate = load;
    if (degraded != nullptr) *degraded = snapshot;
    PacketSim sim(net, oracle, traffic, config, degraded, fault_events);
    return sim.run().saturated();
  };
  double lo = 0.0;
  double hi = 1.0;
  // Check full load first: nonblocking fabrics sustain it and we can
  // return without bisection error.
  bool done = !probe(1.0);
  if (!done) {
    for (std::uint32_t i = 0; i < iterations; ++i) {
      const double mid = (lo + hi) / 2.0;
      if (probe(mid)) {
        hi = mid;
      } else {
        lo = mid;
      }
      obs::trace_instant("sweep.bisect", "sweep", "lo", lo, "hi", hi, "mid",
                         mid);
      obs::metrics().counter("sweep.bisect_steps").add(1);
    }
  }
  if (degraded != nullptr) *degraded = snapshot;
  return done ? 1.0 : lo;
}

double find_saturation_load(const Network& net, const OracleFactory& factory,
                            const TrafficPattern& traffic,
                            const SimConfig& base, std::uint32_t iterations,
                            ThreadPool* pool,
                            const fault::DegradedView* degraded,
                            const std::vector<fault::FaultEvent>& fault_events) {
  NBCLOS_REQUIRE(fault_events.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  obs::ScopedSpan sat_span("sim.find_saturation", "sweep");
  // Bracketing phase: probe a coarse, fixed load grid concurrently.  The
  // grid includes 1.0, so a fabric that sustains full load is recognized
  // without any bisection (matching the serial fast path).
  constexpr std::uint32_t kGridProbes = 8;
  std::vector<std::uint8_t> saturated(kGridProbes, 0);
  const auto grid_load = [](std::uint32_t i) {
    return static_cast<double>(i + 1) / kGridProbes;
  };
  const auto probe_at = [&](std::size_t i) {
    SimConfig config = base;
    config.injection_rate = grid_load(static_cast<std::uint32_t>(i));
    saturated[i] = run_single(net, factory, traffic, config,
                              sweep_run_seed(base.seed, 0xb4acu, i), degraded,
                              fault_events)
                       .saturated();
  };
  if (pool != nullptr) {
    pool->parallel_for(0, kGridProbes, probe_at);
  } else {
    for (std::size_t i = 0; i < kGridProbes; ++i) probe_at(i);
  }
  std::uint32_t first_saturated = kGridProbes;
  for (std::uint32_t i = 0; i < kGridProbes; ++i) {
    if (saturated[i] != 0) {
      first_saturated = i;
      break;
    }
  }
  if (first_saturated == kGridProbes) return 1.0;
  // Bisect the bracketing interval serially (each step depends on the
  // last); per-step seeds keep the result thread-count independent.
  double lo = first_saturated == 0 ? 0.0 : grid_load(first_saturated - 1);
  double hi = grid_load(first_saturated);
  for (std::uint32_t i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    SimConfig config = base;
    config.injection_rate = mid;
    const bool mid_saturated =
        run_single(net, factory, traffic, config,
                   sweep_run_seed(base.seed, 0xb15ec7u, i), degraded,
                   fault_events)
            .saturated();
    if (mid_saturated) {
      hi = mid;
    } else {
      lo = mid;
    }
    obs::trace_instant("sweep.bisect", "sweep", "lo", lo, "hi", hi, "mid",
                       mid);
    obs::metrics().counter("sweep.bisect_steps").add(1);
  }
  return lo;
}

}  // namespace nbclos::sim
