#include "nbclos/sim/oracle.hpp"

#include "nbclos/obs/metrics.hpp"

namespace nbclos::sim {

FtreeOracle::FtreeOracle(const FoldedClos& ftree, UplinkPolicy policy,
                         const RoutingTable* table, std::uint64_t seed)
    : ftree_(&ftree), map_{ftree.params()}, policy_(policy), table_(table),
      rng_(seed) {
  if (policy == UplinkPolicy::kTable) {
    NBCLOS_REQUIRE(table != nullptr, "table policy needs a routing table");
  }
}

FtreeOracle::~FtreeOracle() {
  if constexpr (obs::kEnabled) {
    if (uplink_decisions_ > 0 && obs::enabled()) {
      obs::metrics().counter("sim.oracle.uplink_decisions")
          .add(uplink_decisions_);
    }
  }
}

std::string FtreeOracle::name() const {
  switch (policy_) {
    case UplinkPolicy::kTable: return "ftree-table";
    case UplinkPolicy::kRandom: return "ftree-random";
    case UplinkPolicy::kLeastQueue: return "ftree-least-queue";
    case UplinkPolicy::kDModK: return "ftree-dmodk";
  }
  return "ftree-unknown";
}

std::uint32_t FtreeOracle::next_channel(const SimView& view,
                                        std::uint32_t vertex,
                                        const Packet& packet) {
  const auto& ft = *ftree_;
  const LeafId dst{packet.dst_terminal};  // terminals are ids [0, leafs)
  NBCLOS_REQUIRE(map_.is_terminal(packet.dst_terminal),
                 "destination is not a terminal");

  if (map_.is_terminal(vertex)) {
    // Inject: the only output is the leaf-up channel.
    return ft.leaf_up_link(LeafId{vertex}).value;
  }
  if (map_.is_top(vertex)) {
    // Descend toward the destination's bottom switch — forced.
    return ft.down_link(map_.top_of(vertex), ft.switch_of(dst)).value;
  }
  const BottomId here = map_.bottom_of(vertex);
  if (ft.switch_of(dst) == here) {
    // Deliver locally.
    return ft.leaf_down_link(dst).value;
  }
  // Cross-switch: choose a top switch per the uplink policy.
  ++uplink_decisions_;
  const SDPair sd{LeafId{packet.src_terminal}, dst};
  switch (policy_) {
    case UplinkPolicy::kTable: {
      const auto top = table_->lookup(sd);
      NBCLOS_REQUIRE(top.has_value(), "routing table missing an SD pair");
      return ft.up_link(here, *top).value;
    }
    case UplinkPolicy::kRandom: {
      const auto top = static_cast<std::uint32_t>(rng_.below(ft.m()));
      return ft.up_link(here, TopId{top}).value;
    }
    case UplinkPolicy::kLeastQueue: {
      // Local adaptivity: inspect only this switch's own uplink queues.
      std::uint32_t best_top = 0;
      std::uint32_t best_depth = UINT32_MAX;
      for (std::uint32_t t = 0; t < ft.m(); ++t) {
        const auto depth =
            view.queue_depth(ft.up_link(here, TopId{t}).value);
        if (depth < best_depth) {
          best_depth = depth;
          best_top = t;
        }
      }
      return ft.up_link(here, TopId{best_top}).value;
    }
    case UplinkPolicy::kDModK:
      return ft.up_link(here, TopId{dst.value % ft.m()}).value;
  }
  NBCLOS_ASSERT(false);
  return 0;
}

std::uint32_t CrossbarOracle::next_channel(const SimView& view,
                                           std::uint32_t vertex,
                                           const Packet& packet) {
  // Vertex layout from build_crossbar(): terminals [0, ports), switch at
  // `ports`.  Terminal t's uplink is channel t; downlink to t is ports+t.
  if (vertex < ports_) return vertex;  // terminal -> switch
  NBCLOS_REQUIRE(vertex == ports_, "unexpected vertex in crossbar");
  (void)view;
  return ports_ + packet.dst_terminal;  // switch -> destination terminal
}

}  // namespace nbclos::sim
