#include "nbclos/sim/path_oracle.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos::sim {

ExplicitPathOracle::ExplicitPathOracle(const Network& net,
                                       const NetworkRouteFn& route,
                                       std::string name)
    : name_(std::move(name)) {
  const auto terminals = net.terminals();
  NBCLOS_REQUIRE(net.vertex_count() < (1U << 21),
                 "network too large for packed next-hop keys");
  for (std::uint32_t s = 0; s < terminals.size(); ++s) {
    for (std::uint32_t d = 0; d < terminals.size(); ++d) {
      if (s == d) continue;
      const auto path = route(SDPair{LeafId{s}, LeafId{d}});
      validate_channel_path(net, terminals[s], terminals[d], path);
      std::uint32_t at = terminals[s];
      for (const auto c : path) {
        next_hop_[key(at, terminals[s], terminals[d])] = c;
        at = net.channel(c).dst;
      }
      NBCLOS_ASSERT(at == terminals[d]);
    }
  }
}

std::uint32_t ExplicitPathOracle::next_channel(const SimView& view,
                                               std::uint32_t vertex,
                                               const Packet& packet) {
  (void)view;
  const auto it =
      next_hop_.find(key(vertex, packet.src_terminal, packet.dst_terminal));
  NBCLOS_REQUIRE(it != next_hop_.end(), "no next hop recorded for packet");
  return it->second;
}

}  // namespace nbclos::sim
