#include "nbclos/sim/path_oracle.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos::sim {

ExplicitPathOracle::ExplicitPathOracle(const Network& net,
                                       const NetworkRouteFn& route,
                                       std::string name)
    : name_(std::move(name)),
      cache_(std::make_shared<routing::ChannelRouteCache>(net, route)) {}

ExplicitPathOracle::ExplicitPathOracle(
    std::shared_ptr<const routing::ChannelRouteCache> cache, std::string name)
    : name_(std::move(name)), cache_(std::move(cache)) {
  NBCLOS_REQUIRE(cache_ != nullptr, "route cache must not be null");
}

std::uint32_t ExplicitPathOracle::next_channel(const SimView& view,
                                               std::uint32_t vertex,
                                               const Packet& packet) {
  (void)view;
  return cache_->next_channel_from(vertex, packet.src_terminal,
                                   packet.dst_terminal);
}

}  // namespace nbclos::sim
