#include "nbclos/sim/sharded.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <thread>

#include "nbclos/obs/metrics.hpp"
#include "nbclos/sim/injection_rng.hpp"

namespace nbclos::sim {

namespace {
constexpr std::uint32_t kTermRingInitialCapacity = 16;
}  // namespace

/// All mutable per-shard simulation state — one arena per worker, never
/// touched by any other thread.  Per-channel arrays are locally indexed
/// (plan.channel_local), and local ids ascend with global channel id, so
/// sorted sweeps over `flying`/`sendable` (which store *global* ids)
/// visit channels in the same relative order as PacketSim's global scan.
struct ShardedSim::Shard {
  struct InFlight {
    Packet packet;
    std::uint64_t arrival_cycle = 0;
    bool valid = false;
  };

  std::uint32_t index = 0;
  std::uint32_t term_lo = 0;  ///< owned terminal range [term_lo, term_hi)
  std::uint32_t term_hi = 0;

  // Per owned channel, locally indexed.
  std::vector<InFlight> flight;
  std::vector<std::uint32_t> q_head;
  std::vector<std::uint32_t> q_size;
  std::vector<std::uint32_t> pool_base;
  std::vector<std::uint32_t> queue_depth;
  std::vector<std::uint32_t> rr_last_winner;  ///< global id of last winner
  std::vector<std::uint8_t> in_flying;
  std::vector<std::uint8_t> in_sendable;
  std::vector<std::uint8_t> dst_is_terminal;
  std::vector<std::uint8_t> is_terminal_source_queue;
  std::vector<std::uint32_t> channel_dst;
  std::uint32_t switch_slice_mask = 0;
  std::vector<Packet> switch_pool;               ///< the shard's queue arena
  std::vector<std::vector<Packet>> term_rings;
  std::vector<std::uint32_t> flying;    ///< global channel ids
  std::vector<std::uint32_t> sendable;  ///< global channel ids

  std::optional<fault::DegradedView> degraded;
  std::size_t next_fault = 0;
  std::uint32_t numa_node = 0;  ///< node the worker ran (and touched) on
  std::uint8_t pinned = 0;

  // Phase scratch.
  std::vector<Proposal> local_props;  ///< proposals targeting this shard
  std::vector<Proposal> merged;

  // Statistics, merged exactly after the run.
  std::uint64_t switch_depth_sum = 0;
  std::uint64_t switch_channel_count = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered_measured_flits = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_count = 0;
  QuantileHistogram latency_hist;
  std::vector<std::uint64_t> delivered_per_source;  ///< all T terminals
  std::vector<std::uint64_t> flow_sequence;         ///< owned range only
  std::vector<std::uint64_t> depth_sum_by_cycle;    ///< per cycle, replayed
  std::uint64_t next_packet_id = 0;
  std::uint64_t link_busy_flits = 0;
  std::uint64_t cross_flits = 0;
  std::uint64_t mailbox_peak = 0;
  std::uint64_t barrier_wait_ns = 0;
  std::uint64_t barrier_samples = 0;

  explicit Shard(std::uint64_t latency_max) : latency_hist(latency_max) {}
};

ShardedSim::ShardedSim(const Network& net, const ShardRouter& router,
                       const TrafficPattern& traffic, SimConfig config,
                       std::uint32_t shards,
                       const fault::DegradedView* degraded,
                       std::vector<fault::FaultEvent> fault_events)
    : net_(&net), router_(&router), traffic_(&traffic), config_(config),
      fault_events_(std::move(fault_events)),
      packet_rate_(config.injection_rate /
                   static_cast<double>(config.packet_size)) {
  NBCLOS_REQUIRE(net.finalized(), "network must be finalized");
  NBCLOS_REQUIRE(degraded == nullptr || &degraded->network() == &net,
                 "degraded view was built over a different network");
  NBCLOS_REQUIRE(fault_events_.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  NBCLOS_REQUIRE(config.injection_rate >= 0.0 && config.injection_rate <= 1.0,
                 "injection rate must be in [0, 1] flits/cycle");
  NBCLOS_REQUIRE(config.packet_size >= 1, "packets need at least one flit");
  NBCLOS_REQUIRE(config.queue_capacity >= 1, "queues need capacity >= 1");
  std::stable_sort(fault_events_.begin(), fault_events_.end(),
                   [](const fault::FaultEvent& a, const fault::FaultEvent& b) {
                     return a.cycle < b.cycle;
                   });
  const auto terminal_vertices = net.terminals();
  terminal_count_ = static_cast<std::uint32_t>(terminal_vertices.size());
  NBCLOS_REQUIRE(traffic.terminal_count() == terminal_count_,
                 "traffic pattern size does not match network");
  for (std::uint32_t t = 0; t < terminal_count_; ++t) {
    NBCLOS_REQUIRE(terminal_vertices[t] == t,
                   "terminals must be vertices [0, T) (library builders "
                   "guarantee this)");
  }
  config_.counter_injection = true;  // the sharded engine's only mode
  degraded_ = degraded;

  plan_ = ShardPlan::build(net, shards);
  const std::uint32_t shard_count = plan_.shard_count;
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;

  // Shard objects carry only metadata here; the heavy arena vectors are
  // allocated (and thus first-touched) inside each worker thread in
  // run_shard, so with pinning enabled every arena's pages land on the
  // worker's own NUMA node.
  shards_.reserve(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    auto shard = std::make_unique<Shard>(total);
    shard->index = s;
    shard->term_lo = std::min(plan_.vertex_begin[s], terminal_count_);
    shard->term_hi = std::min(plan_.vertex_begin[s + 1], terminal_count_);
    shards_.push_back(std::move(shard));
  }

  proposal_box_ = MailboxGrid<Proposal>(shard_count);
  ack_box_ = MailboxGrid<Ack>(shard_count);
  sync_ =
      std::make_unique<ShardSync>(static_cast<std::ptrdiff_t>(shard_count));
  numa_ = NumaTopology::detect();
  if constexpr (obs::kEnabled) arm_recorder();
}

void ShardedSim::arm_recorder() {
  if (!config_.record_timeseries) return;
  obs::FlightRecorder::Config rec;
  rec.cadence = config_.record_cadence;
  rec.ring_capacity = config_.record_ring_capacity;
  rec.shards = plan_.shard_count;
  recorder_.configure(rec);
  // Same names, cadence, and capacity as the serial PacketSim recorder,
  // so after the per-shard sum these kInvariant series are bit-identical
  // to a serial recording of the same run at any shard count.
  rec_queue_depth_ =
      recorder_.series("sim.queue.depth_sum", obs::SeriesAgg::kSum);
  rec_active_flying_ =
      recorder_.series("sim.active.flying", obs::SeriesAgg::kSum);
  rec_active_sendable_ =
      recorder_.series("sim.active.sendable", obs::SeriesAgg::kSum);
  rec_busy_flits_ =
      recorder_.series("sim.link.busy_flits", obs::SeriesAgg::kSum);
  rec_injected_ =
      recorder_.series("sim.packets.injected", obs::SeriesAgg::kSum);
  rec_delivered_ =
      recorder_.series("sim.packets.delivered", obs::SeriesAgg::kSum);
  // Cross-shard fabric health: only meaningful relative to the shard
  // cut, so excluded from the shard-count-invariance contract.
  rec_mailbox_flits_ =
      recorder_.series("sim.mailbox.cross_flits", obs::SeriesAgg::kSum,
                       obs::SeriesScope::kShardTopology);
  rec_mailbox_peak_ =
      recorder_.series("sim.mailbox.peak", obs::SeriesAgg::kMax,
                       obs::SeriesScope::kShardTopology);
}

void ShardedSim::sample_recorder(Shard& sh, std::uint64_t now) {
  const std::uint32_t slot = sh.index;
  recorder_.record(rec_queue_depth_, slot, now,
                   static_cast<std::int64_t>(sh.switch_depth_sum));
  recorder_.record(rec_active_flying_, slot, now,
                   static_cast<std::int64_t>(sh.flying.size()));
  recorder_.record(rec_active_sendable_, slot, now,
                   static_cast<std::int64_t>(sh.sendable.size()));
  recorder_.record(rec_busy_flits_, slot, now,
                   static_cast<std::int64_t>(sh.link_busy_flits));
  recorder_.record(rec_injected_, slot, now,
                   static_cast<std::int64_t>(sh.injected));
  recorder_.record(rec_delivered_, slot, now,
                   static_cast<std::int64_t>(sh.delivered_packets));
  recorder_.record(rec_mailbox_flits_, slot, now,
                   static_cast<std::int64_t>(sh.cross_flits));
  recorder_.record(rec_mailbox_peak_, slot, now,
                   static_cast<std::int64_t>(sh.mailbox_peak));
}

void ShardedSim::init_shard_arena(std::uint32_t s) {
  Shard& sh = *shards_[s];
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  const auto slice = std::bit_ceil(config_.queue_capacity);
  const auto& owned = plan_.shard_channels[s];
  const auto count = static_cast<std::uint32_t>(owned.size());
  sh.flight.resize(count);
  sh.q_head.assign(count, 0);
  sh.q_size.assign(count, 0);
  sh.pool_base.assign(count, 0);
  sh.queue_depth.assign(count, 0);
  sh.rr_last_winner.assign(count, 0);
  sh.in_flying.assign(count, 0);
  sh.in_sendable.assign(count, 0);
  sh.dst_is_terminal.assign(count, 0);
  sh.is_terminal_source_queue.assign(count, 0);
  sh.channel_dst.assign(count, 0);
  sh.switch_slice_mask = slice - 1;
  std::uint32_t switch_channels = 0;
  std::uint32_t term_channels = 0;
  for (std::uint32_t li = 0; li < count; ++li) {
    const auto c = owned[li];
    const auto dst = net_->channel_dst(c);
    sh.channel_dst[li] = dst;
    sh.dst_is_terminal[li] = net_->vertex(dst).kind == VertexKind::kTerminal;
    if (net_->vertex(net_->channel_src(c)).kind == VertexKind::kTerminal) {
      sh.is_terminal_source_queue[li] = 1;
      sh.pool_base[li] = term_channels++;
    } else {
      sh.pool_base[li] = switch_channels * slice;
      ++switch_channels;
    }
  }
  sh.switch_pool.resize(std::size_t{switch_channels} * slice);
  sh.term_rings.resize(term_channels);
  sh.switch_channel_count = switch_channels;
  sh.flying.reserve(count);
  sh.sendable.reserve(count);
  sh.delivered_per_source.assign(terminal_count_, 0);
  sh.flow_sequence.assign(sh.term_hi - sh.term_lo, 0);
  sh.depth_sum_by_cycle.assign(total, 0);
  if (degraded_ != nullptr) sh.degraded.emplace(*degraded_);
}

ShardedSim::~ShardedSim() = default;

bool ShardedSim::channel_usable(const Shard& sh, std::uint32_t channel) const {
  return !sh.degraded.has_value() || sh.degraded->channel_alive(channel);
}

void ShardedSim::queue_push(Shard& sh, std::uint32_t channel,
                            const Packet& packet) {
  const auto li = plan_.channel_local[channel];
  if (sh.is_terminal_source_queue[li]) {
    auto& ring = sh.term_rings[sh.pool_base[li]];
    if (sh.q_size[li] == ring.size()) {
      std::vector<Packet> bigger(
          ring.empty() ? kTermRingInitialCapacity : ring.size() * 2);
      for (std::uint32_t i = 0; i < sh.q_size[li]; ++i) {
        bigger[i] = ring[(sh.q_head[li] + i) & (ring.size() - 1)];
      }
      ring = std::move(bigger);
      sh.q_head[li] = 0;
    }
    ring[(sh.q_head[li] + sh.q_size[li]) & (ring.size() - 1)] = packet;
  } else {
    sh.switch_pool[sh.pool_base[li] +
                   ((sh.q_head[li] + sh.q_size[li]) &
                    sh.switch_slice_mask)] = packet;
    ++sh.queue_depth[li];
    ++sh.switch_depth_sum;
  }
  ++sh.q_size[li];
  if (!sh.in_sendable[li]) {
    sh.in_sendable[li] = 1;
    sh.sendable.push_back(channel);
  }
}

Packet ShardedSim::queue_pop(Shard& sh, std::uint32_t channel) {
  const auto li = plan_.channel_local[channel];
  NBCLOS_ASSERT(sh.q_size[li] > 0);
  Packet packet;
  if (sh.is_terminal_source_queue[li]) {
    auto& ring = sh.term_rings[sh.pool_base[li]];
    packet = ring[sh.q_head[li]];
    sh.q_head[li] = (sh.q_head[li] + 1) &
                    (static_cast<std::uint32_t>(ring.size()) - 1);
  } else {
    packet = sh.switch_pool[sh.pool_base[li] + sh.q_head[li]];
    sh.q_head[li] = (sh.q_head[li] + 1) & sh.switch_slice_mask;
    --sh.queue_depth[li];
    --sh.switch_depth_sum;
  }
  --sh.q_size[li];
  return packet;
}

void ShardedSim::queue_clear(Shard& sh, std::uint32_t channel) {
  const auto li = plan_.channel_local[channel];
  if (!sh.is_terminal_source_queue[li]) {
    sh.switch_depth_sum -= sh.queue_depth[li];
    sh.queue_depth[li] = 0;
  }
  sh.q_size[li] = 0;
  sh.q_head[li] = 0;
}

void ShardedSim::deliver(Shard& sh, const Packet& packet, std::uint64_t now,
                         bool measuring) {
  ++sh.delivered_packets;
  if (!measuring) return;
  sh.delivered_measured_flits += packet.size_flits;
  sh.delivered_per_source[packet.src_terminal] += packet.size_flits;
  if (packet.injected_cycle >= config_.warmup_cycles) {
    const std::uint64_t latency = now - packet.injected_cycle;
    sh.latency_sum += latency;
    ++sh.latency_count;
    sh.latency_hist.add(latency);
  }
}

void ShardedSim::cycle_faults(Shard& sh, std::uint64_t now) {
  bool applied = false;
  while (sh.next_fault < fault_events_.size() &&
         fault_events_[sh.next_fault].cycle <= now) {
    sh.degraded->apply(fault_events_[sh.next_fault]);
    ++sh.next_fault;
    applied = true;
  }
  if (!applied) return;
  for (const auto c : sh.flying) {
    const auto li = plan_.channel_local[c];
    if (sh.flight[li].valid && !sh.degraded->channel_alive(c)) {
      ++sh.dropped;
      sh.flight[li].valid = false;
    }
  }
  for (const auto c : sh.sendable) {
    const auto li = plan_.channel_local[c];
    if (sh.q_size[li] > 0 && !sh.degraded->channel_alive(c)) {
      sh.dropped += sh.q_size[li];
      queue_clear(sh, c);
    }
  }
}

void ShardedSim::phase_propose(Shard& sh, std::uint64_t now, bool measuring) {
  std::sort(sh.flying.begin(), sh.flying.end());
  std::size_t keep = 0;
  const std::size_t flying_count = sh.flying.size();
  for (std::size_t i = 0; i < flying_count; ++i) {
    const auto c = sh.flying[i];
    const auto li = plan_.channel_local[c];
    auto& fl = sh.flight[li];
    if (!fl.valid) {  // purged by a fault since the last sweep
      sh.in_flying[li] = 0;
      continue;
    }
    if (fl.arrival_cycle > now) {
      sh.flying[keep++] = c;
      continue;
    }
    if (sh.dst_is_terminal[li]) {
      NBCLOS_ASSERT(sh.channel_dst[li] == fl.packet.dst_terminal);
      deliver(sh, fl.packet, now, measuring);
      fl.valid = false;
      sh.in_flying[li] = 0;
      continue;
    }
    const std::uint32_t at = sh.channel_dst[li];
    const auto next = router_->next_channel(at, fl.packet);
    if (next == fault::kNoRoute || !channel_usable(sh, next)) {
      ++sh.dropped;
      fl.valid = false;
      sh.in_flying[li] = 0;
      continue;
    }
    NBCLOS_ASSERT(net_->channel_src(next) == at);
    // Propose admission to the owner of the chosen channel.  The
    // candidate leaves the kept range but stays marked in_flying with a
    // valid flight; the ack in phase C either clears it (winner) or
    // re-appends it (loser — backpressure, exactly PacketSim).
    const Proposal proposal{next, c, fl.packet};
    const auto owner = plan_.channel_owner[next];
    if (owner == sh.index) {
      sh.local_props.push_back(proposal);
    } else {
      proposal_box_.box(sh.index, owner).push_back(proposal);
      sh.cross_flits += fl.packet.size_flits;
    }
  }
  sh.flying.resize(keep);
}

void ShardedSim::send_ack(Shard& sh, std::uint32_t from, bool accepted) {
  const auto owner = plan_.channel_owner[from];
  if (owner == sh.index) {
    const auto li = plan_.channel_local[from];
    if (accepted) {
      sh.flight[li].valid = false;
      sh.in_flying[li] = 0;
    } else {
      sh.flying.push_back(from);
    }
  } else {
    ack_box_.box(sh.index, owner).push_back(Ack{from, accepted});
  }
}

void ShardedSim::phase_admit(Shard& sh) {
  // Merge this cycle's proposals (local + one mailbox per peer) and sort
  // by (target, from): per target the candidates are then in ascending
  // proposing-channel order — the same order PacketSim's global
  // ascending scan produces — so the round-robin arbitration below is
  // verbatim step_arrivals phase 2.
  auto& merged = sh.merged;
  merged.clear();
  merged.insert(merged.end(), sh.local_props.begin(), sh.local_props.end());
  sh.local_props.clear();
  proposal_box_.drain_to(sh.index, [&](std::uint32_t,
                                       const std::vector<Proposal>& box) {
    sh.mailbox_peak = std::max<std::uint64_t>(sh.mailbox_peak, box.size());
    merged.insert(merged.end(), box.begin(), box.end());
  });
  std::sort(merged.begin(), merged.end(),
            [](const Proposal& a, const Proposal& b) {
              return a.target < b.target ||
                     (a.target == b.target && a.from < b.from);
            });
  std::size_t g = 0;
  while (g < merged.size()) {
    const std::uint32_t target = merged[g].target;
    std::size_t end = g + 1;
    while (end < merged.size() && merged[end].target == target) ++end;
    const std::size_t n = end - g;
    const auto li = plan_.channel_local[target];
    std::size_t start = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (merged[g + i].from > sh.rr_last_winner[li]) {
        start = i;
        break;
      }
    }
    std::size_t i = 0;
    for (; i < n && sh.queue_depth[li] < config_.queue_capacity; ++i) {
      const Proposal& winner = merged[g + (start + i) % n];
      queue_push(sh, target, winner.packet);
      sh.rr_last_winner[li] = winner.from;
      send_ack(sh, winner.from, true);
    }
    for (; i < n; ++i) {
      send_ack(sh, merged[g + (start + i) % n].from, false);
    }
    g = end;
  }
}

void ShardedSim::phase_resolve(Shard& sh, std::uint64_t now) {
  // Acks first: an accepted candidate frees its channel, which may load
  // a new packet in this cycle's transmissions (as in PacketSim, where
  // step_arrivals completes before step_transmissions).
  ack_box_.drain_to(sh.index, [&](std::uint32_t,
                                  const std::vector<Ack>& box) {
    for (const Ack& ack : box) {
      const auto li = plan_.channel_local[ack.from];
      if (ack.accepted) {
        sh.flight[li].valid = false;
        sh.in_flying[li] = 0;
      } else {
        sh.flying.push_back(ack.from);
      }
    }
  });

  // Transmissions (PacketSim::step_transmissions over owned channels).
  std::sort(sh.sendable.begin(), sh.sendable.end());
  std::size_t keep = 0;
  const std::size_t sendable_count = sh.sendable.size();
  for (std::size_t i = 0; i < sendable_count; ++i) {
    const auto c = sh.sendable[i];
    const auto li = plan_.channel_local[c];
    if (sh.q_size[li] == 0) {
      sh.in_sendable[li] = 0;
      continue;
    }
    auto& fl = sh.flight[li];
    if (!fl.valid && channel_usable(sh, c)) {
      fl.packet = queue_pop(sh, c);
      fl.valid = true;
      fl.arrival_cycle = now + fl.packet.size_flits;
      sh.link_busy_flits += fl.packet.size_flits;
      if (!sh.in_flying[li]) {
        sh.in_flying[li] = 1;
        sh.flying.push_back(c);
      }
      if (sh.q_size[li] == 0) {
        sh.in_sendable[li] = 0;
        continue;
      }
    }
    sh.sendable[keep++] = c;
  }
  sh.sendable.resize(keep);

  // Injection over the owned terminal range with the counter-based RNG:
  // every draw is a pure function of (seed, cycle, terminal), so the
  // stream is independent of which shard evaluates which terminal.
  for (std::uint32_t t = sh.term_lo; t < sh.term_hi; ++t) {
    SplitMix64 sm(injection_counter_state(config_.seed, now, t));
    if (!injection_bernoulli(sm, packet_rate_)) continue;
    Xoshiro256 dest_rng(sm.next());
    const auto dst = traffic_->destination(t, dest_rng);
    if (!dst.has_value()) continue;
    Packet packet;
    packet.id = sh.next_packet_id++;
    packet.src_terminal = t;
    packet.dst_terminal = *dst;
    packet.size_flits = config_.packet_size;
    packet.injected_cycle = now;
    packet.flow_sequence = sh.flow_sequence[t - sh.term_lo]++;
    const auto channel = router_->next_channel(t, packet);
    ++sh.injected;
    if (channel == fault::kNoRoute || !channel_usable(sh, channel)) {
      ++sh.dropped;
      continue;
    }
    // A terminal's uplink departs from the terminal vertex, so the queue
    // is always shard-local.
    NBCLOS_ASSERT(plan_.channel_owner[channel] == sh.index);
    queue_push(sh, channel, packet);
  }
}

void ShardedSim::run_shard(std::uint32_t s) {
  try {
    Shard& sh = *shards_[s];
    if (config_.pin_shards && !numa_.pin_order.empty()) {
      sh.pinned =
          pin_current_thread(numa_.pin_order[s % numa_.pin_order.size()])
              ? 1
              : 0;
    }
    // First-touch: the arena vectors are allocated here, on the worker's
    // own thread (after pinning), so their pages land on this node.
    init_shard_arena(s);
    sh.numa_node = current_numa_node(numa_);
    const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
    for (std::uint64_t now = 0; now < total; ++now) {
      if (sync_->poisoned()) {
        sync_->barrier.arrive_and_drop();
        return;
      }
      const bool measuring = now >= config_.warmup_cycles;
      if (sh.degraded.has_value()) cycle_faults(sh, now);
      bool timed = false;
      if constexpr (obs::kEnabled) {
        timed = (now & 63u) == 0 && obs::enabled();
      }
      phase_propose(sh, now, measuring);
      if (timed) {
        using clock = std::chrono::steady_clock;
        const auto t0 = clock::now();
        sync_->barrier.arrive_and_wait();
        const auto t1 = clock::now();
        phase_admit(sh);
        const auto t2 = clock::now();
        sync_->barrier.arrive_and_wait();
        const auto t3 = clock::now();
        sh.barrier_wait_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                (t1 - t0) + (t3 - t2))
                .count());
        ++sh.barrier_samples;
      } else {
        sync_->barrier.arrive_and_wait();
        phase_admit(sh);
        sync_->barrier.arrive_and_wait();
      }
      phase_resolve(sh, now);
      sh.depth_sum_by_cycle[now] = sh.switch_depth_sum;
      if constexpr (obs::kEnabled) {
        if (recorder_.want(now)) sample_recorder(sh, now);
      }
    }
  } catch (...) {
    sync_->record_failure();
  }
}

SimResult ShardedSim::run() {
  NBCLOS_REQUIRE(!ran_, "ShardedSim::run may only be called once");
  ran_ = true;
  obs::ScopedSpan span("sim.sharded.run", "sim");
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(plan_.shard_count);
  for (std::uint32_t s = 1; s < plan_.shard_count; ++s) {
    workers.emplace_back([this, s] { run_shard(s); });
  }
  // With pinning, shard 0 gets its own thread too — running it inline
  // would permanently re-pin the caller's thread.
  if (config_.pin_shards) {
    workers.emplace_back([this] { run_shard(0); });
  } else {
    run_shard(0);
  }
  for (auto& worker : workers) worker.join();
  sync_->rethrow_if_failed();

  SimResult result = merge_results();
  if constexpr (obs::kEnabled) {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;
    flush_obs(wall.count());
    span.arg("cycles", static_cast<double>(config_.warmup_cycles +
                                           config_.measure_cycles));
    span.arg("shards", static_cast<double>(plan_.shard_count));
    span.arg("rate", config_.injection_rate);
  }
  return result;
}

SimResult ShardedSim::merge_results() {
  const std::uint64_t total = config_.warmup_cycles + config_.measure_cycles;
  SimResult result;
  result.offered_load = config_.injection_rate;

  std::uint64_t delivered_measured_flits = 0;
  std::uint64_t latency_sum = 0;
  std::uint64_t latency_count = 0;
  std::uint64_t switch_channels = 0;
  QuantileHistogram hist(total);
  telemetry_ = Telemetry{};
  for (const auto& shard : shards_) {
    const Shard& sh = *shard;
    result.injected_packets += sh.injected;
    result.delivered_packets += sh.delivered_packets;
    result.dropped_packets += sh.dropped;
    delivered_measured_flits += sh.delivered_measured_flits;
    latency_sum += sh.latency_sum;
    latency_count += sh.latency_count;
    switch_channels += sh.switch_channel_count;
    hist.merge(sh.latency_hist);
    telemetry_.cross_shard_flits += sh.cross_flits;
    telemetry_.mailbox_peak =
        std::max(telemetry_.mailbox_peak, sh.mailbox_peak);
    for (const auto& fl : sh.flight) {
      if (fl.valid) ++telemetry_.remaining_packets;
    }
    for (const auto q : sh.q_size) telemetry_.remaining_packets += q;
  }

  result.accepted_throughput =
      static_cast<double>(delivered_measured_flits) /
      (static_cast<double>(config_.measure_cycles) *
       static_cast<double>(terminal_count_));
  // Exact integer mean — the same arithmetic PacketSim uses in
  // counter-injection mode, and independent of delivery order.
  result.mean_latency =
      latency_count > 0
          ? static_cast<double>(latency_sum) / static_cast<double>(latency_count)
          : 0.0;
  result.latency_bucket_width = static_cast<double>(hist.bucket_width());
  if (hist.count() > 0) {
    result.p50_latency = hist.quantile(0.50);
    result.p99_latency = hist.quantile(0.99);
    result.p999_latency = hist.quantile(0.999);
  }

  // Mean switch-queue depth: replay the per-cycle global depth sums in
  // cycle order through the same Welford accumulator PacketSim streams,
  // so the result is bit-identical at any shard count.
  RunningStats depth_samples;
  if (switch_channels > 0) {
    for (std::uint64_t cycle = config_.warmup_cycles; cycle < total; ++cycle) {
      std::uint64_t sum = 0;
      for (const auto& shard : shards_) {
        sum += shard->depth_sum_by_cycle[cycle];
      }
      depth_samples.add(static_cast<double>(sum) /
                        static_cast<double>(switch_channels));
    }
  }
  result.mean_switch_queue_depth = depth_samples.mean();

  // Fairness extremes over sources that injected anything, in ascending
  // terminal order (PacketSim's loop).  flow_sequence lives with the
  // injecting shard; deliveries are summed across all shards.
  bool first_flow = true;
  for (std::uint32_t t = 0; t < terminal_count_; ++t) {
    const Shard& owner = *shards_[plan_.shard_of_vertex(t)];
    if (owner.flow_sequence[t - owner.term_lo] == 0) continue;
    std::uint64_t delivered_flits = 0;
    for (const auto& shard : shards_) {
      delivered_flits += shard->delivered_per_source[t];
    }
    const double rate = static_cast<double>(delivered_flits) /
                        static_cast<double>(config_.measure_cycles);
    if (first_flow) {
      result.min_flow_throughput = rate;
      result.max_flow_throughput = rate;
      first_flow = false;
    } else {
      result.min_flow_throughput = std::min(result.min_flow_throughput, rate);
      result.max_flow_throughput = std::max(result.max_flow_throughput, rate);
    }
  }
  return result;
}

std::size_t ShardedSim::arena_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& shard : shards_) {
    const Shard& sh = *shard;
    bytes += sh.switch_pool.capacity() * sizeof(Packet);
    for (const auto& ring : sh.term_rings) {
      bytes += ring.capacity() * sizeof(Packet);
    }
    bytes += sh.term_rings.capacity() * sizeof(std::vector<Packet>);
    bytes += sh.flight.capacity() * sizeof(Shard::InFlight);
    bytes += (sh.q_head.capacity() + sh.q_size.capacity() +
              sh.pool_base.capacity() + sh.queue_depth.capacity() +
              sh.rr_last_winner.capacity() + sh.channel_dst.capacity() +
              sh.flying.capacity() + sh.sendable.capacity()) *
             sizeof(std::uint32_t);
    bytes += sh.in_flying.capacity() + sh.in_sendable.capacity() +
             sh.dst_is_terminal.capacity() +
             sh.is_terminal_source_queue.capacity();
    bytes += (sh.delivered_per_source.capacity() +
              sh.flow_sequence.capacity() +
              sh.depth_sum_by_cycle.capacity()) *
             sizeof(std::uint64_t);
  }
  return bytes;
}

void ShardedSim::flush_obs(double wall_seconds) {
  if (!obs::enabled()) return;
  auto& m = obs::metrics();
  m.counter("sim.sharded.runs").add(1);
  m.gauge("sim.sharded.shards").set(plan_.shard_count);
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t busy = 0;
  for (const auto& shard : shards_) {
    injected += shard->injected;
    delivered += shard->delivered_packets;
    dropped += shard->dropped;
    busy += shard->link_busy_flits;
  }
  m.counter("sim.packets.injected").add(injected);
  m.counter("sim.packets.delivered").add(delivered);
  m.counter("sim.packets.dropped").add(dropped);
  m.counter("sim.link.busy_flit_cycles").add(busy);
  m.counter("sim.sharded.cross_shard_flits")
      .add(telemetry_.cross_shard_flits);
  m.gauge("sim.sharded.mailbox_peak")
      .set(static_cast<std::int64_t>(telemetry_.mailbox_peak));
  // Per-shard arena occupancy: queued packets left at end of run plus
  // the arena footprint, one gauge pair per shard.
  for (const auto& shard : shards_) {
    const Shard& sh = *shard;
    m.gauge("sim.sharded.shard." + std::to_string(sh.index) + ".depth_sum")
        .set(static_cast<std::int64_t>(sh.switch_depth_sum));
    // Arena node residency: with pinning + first-touch this is the node
    // the shard's arena pages live on.
    m.gauge("sim.sharded.shard." + std::to_string(sh.index) + ".numa_node")
        .set(static_cast<std::int64_t>(sh.numa_node));
    // Sampled epoch-barrier wait: mean ns per sampled cycle, per shard.
    if (sh.barrier_samples > 0) {
      m.histogram("sim.sharded.barrier_wait_ns", 1'000'000)
          .record(sh.barrier_wait_ns / sh.barrier_samples);
    }
  }
  m.counter("sim.wall_us")
      .add(static_cast<std::uint64_t>(wall_seconds * 1e6));
}

std::vector<SimResult> load_sweep_sharded(
    const Network& net, const ShardRouter& router,
    const TrafficPattern& traffic, const SimConfig& base,
    const std::vector<double>& rates, std::uint32_t shards,
    const fault::DegradedView* degraded,
    const std::vector<fault::FaultEvent>& fault_events) {
  NBCLOS_REQUIRE(fault_events.empty() || degraded != nullptr,
                 "fault events need a degraded view to apply to");
  std::vector<SimResult> results;
  results.reserve(rates.size());
  for (const double rate : rates) {
    SimConfig config = base;
    config.injection_rate = rate;
    ShardedSim sim(net, router, traffic, config, shards, degraded,
                   fault_events);
    results.push_back(sim.run());
  }
  return results;
}

}  // namespace nbclos::sim
