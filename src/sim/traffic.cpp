#include "nbclos/sim/traffic.hpp"

#include "nbclos/util/check.hpp"

namespace nbclos::sim {

TrafficPattern TrafficPattern::permutation(const Permutation& pattern,
                                           std::uint32_t terminal_count) {
  validate_permutation(pattern, terminal_count);
  TrafficPattern t;
  t.kind_ = Kind::kPermutation;
  t.terminal_count_ = terminal_count;
  t.name_ = "permutation";
  t.fixed_destination_.assign(terminal_count, -1);
  for (const auto sd : pattern) {
    t.fixed_destination_[sd.src.value] = sd.dst.value;
  }
  return t;
}

TrafficPattern TrafficPattern::uniform(std::uint32_t terminal_count) {
  NBCLOS_REQUIRE(terminal_count >= 2, "need at least two terminals");
  TrafficPattern t;
  t.kind_ = Kind::kUniform;
  t.terminal_count_ = terminal_count;
  t.name_ = "uniform";
  return t;
}

TrafficPattern TrafficPattern::hotspot(std::uint32_t terminal_count,
                                       std::uint32_t hotspot_terminal,
                                       double fraction) {
  NBCLOS_REQUIRE(terminal_count >= 2, "need at least two terminals");
  NBCLOS_REQUIRE(hotspot_terminal < terminal_count, "hotspot out of range");
  NBCLOS_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "fraction in [0,1]");
  TrafficPattern t;
  t.kind_ = Kind::kHotspot;
  t.terminal_count_ = terminal_count;
  t.name_ = "hotspot";
  t.hotspot_terminal_ = hotspot_terminal;
  t.hotspot_fraction_ = fraction;
  return t;
}

std::optional<std::uint32_t> TrafficPattern::destination(
    std::uint32_t src, Xoshiro256& rng) const {
  NBCLOS_REQUIRE(src < terminal_count_, "source out of range");
  switch (kind_) {
    case Kind::kPermutation: {
      const auto dst = fixed_destination_[src];
      if (dst < 0) return std::nullopt;
      return static_cast<std::uint32_t>(dst);
    }
    case Kind::kUniform: {
      auto dst = static_cast<std::uint32_t>(rng.below(terminal_count_ - 1));
      if (dst >= src) ++dst;  // skip self
      return dst;
    }
    case Kind::kHotspot: {
      if (src != hotspot_terminal_ && rng.bernoulli(hotspot_fraction_)) {
        return hotspot_terminal_;
      }
      auto dst = static_cast<std::uint32_t>(rng.below(terminal_count_ - 1));
      if (dst >= src) ++dst;
      return dst;
    }
  }
  return std::nullopt;
}

}  // namespace nbclos::sim
