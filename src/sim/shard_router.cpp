#include "nbclos/sim/shard_router.hpp"

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::sim {

KaryDmodkRouter::KaryDmodkRouter(const Network& net, std::uint32_t k,
                                 std::uint32_t h)
    : k_(k), h_(h) {
  NBCLOS_REQUIRE(k >= 2 && h >= 1, "k-ary n-tree needs k >= 2, h >= 1");
  std::uint64_t terminals = 1;
  powk_.reserve(h);
  for (std::uint32_t i = 0; i < h; ++i) {
    powk_.push_back(i == 0 ? 1 : powk_.back() * k);
    terminals *= k;
  }
  NBCLOS_REQUIRE(terminals <= UINT32_MAX, "tree too large");
  terminals_ = static_cast<std::uint32_t>(terminals);
  per_level_ = static_cast<std::uint32_t>(terminals / k);
  inter_base_ = 2 * terminals_;
  // The O(1) channel formulas assume build_kary_ntree's exact numbering;
  // verify the census so a mismatched network fails loudly up front.
  NBCLOS_REQUIRE(net.finalized(), "network must be finalized");
  NBCLOS_REQUIRE(
      net.vertex_count() == terminals_ + std::uint64_t{h} * per_level_,
      "network is not build_kary_ntree(k, h): vertex count mismatch");
  const std::uint64_t expected_channels =
      2 * std::uint64_t{terminals_} +
      (h >= 2 ? 2 * std::uint64_t{h - 1} * per_level_ * k : 0);
  NBCLOS_REQUIRE(net.channel_count() == expected_channels,
                 "network is not build_kary_ntree(k, h): channel count "
                 "mismatch");
}

std::uint32_t KaryDmodkRouter::next_channel(std::uint32_t vertex,
                                            const Packet& packet) const {
  // Terminal source: the only output is its uplink, channel 2*vertex.
  if (vertex < terminals_) return 2 * vertex;

  const std::uint32_t dst = packet.dst_terminal;
  const std::uint32_t wd = dst / k_;  // destination edge-switch position
  const std::uint32_t idx = vertex - terminals_;
  const std::uint32_t level = idx / per_level_;
  const std::uint32_t w = idx % per_level_;

  const auto digit = [&](std::uint32_t value, std::uint32_t i) {
    return static_cast<std::uint32_t>((value / powk_[i]) % k_);
  };

  // Descend exactly when the destination's edge switch is reachable
  // below: all position digits >= level agree with wd's.
  const bool descend =
      level == 0 ? w == wd : w / powk_[level] == wd / powk_[level];
  if (descend) {
    if (level == 0) return 2 * dst + 1;  // edge switch -> terminal downlink
    // Down to (level-1, w with digit level-1 := wd's); the down channel
    // paired with up digit d carries d = our digit level-1.
    const std::uint32_t d = digit(w, level - 1);
    const std::uint32_t w_low =
        w + (digit(wd, level - 1) - d) * static_cast<std::uint32_t>(
                                             powk_[level - 1]);
    return inter_base_ +
           2 * (((level - 1) * per_level_ + w_low) * k_ + d) + 1;
  }
  // Ascend, keying digit `level` to the destination's digit — the k-ary
  // analogue of d-mod-k, and exactly KaryTreeRouter::route's ascent.
  const std::uint32_t d = digit(wd, level);
  return inter_base_ + 2 * ((level * per_level_ + w) * k_ + d);
}

std::uint32_t FtreeDmodkRouter::next_channel(std::uint32_t vertex,
                                             const Packet& packet) const {
  const auto& ft = *ftree_;
  const LeafId dst{packet.dst_terminal};
  if (map_.is_terminal(vertex)) {
    return ft.leaf_up_link(LeafId{vertex}).value;
  }
  if (map_.is_top(vertex)) {
    return ft.down_link(map_.top_of(vertex), ft.switch_of(dst)).value;
  }
  const BottomId here = map_.bottom_of(vertex);
  if (ft.switch_of(dst) == here) return ft.leaf_down_link(dst).value;
  return ft.up_link(here, TopId{dst.value % ft.m()}).value;
}

RecursiveShardRouter::RecursiveShardRouter(const MultiLevelFabric& fabric)
    : fabric_(&fabric), net_(&fabric.network()) {
  NBCLOS_REQUIRE(net_->finalized(), "fabric network must be finalized");
}

std::uint32_t RecursiveShardRouter::next_channel(std::uint32_t vertex,
                                                 const Packet& packet) const {
  if (packet.src_terminal == packet.dst_terminal) return fault::kNoRoute;
  // The Theorem 3 path is fixed per SD pair; every vertex appears on it
  // at most once, so at most one path channel leaves `vertex`.
  const auto path = fabric_->route(
      {LeafId{packet.src_terminal}, LeafId{packet.dst_terminal}});
  for (const auto c : path) {
    if (net_->channel_src(c) == vertex) return c;
  }
  return fault::kNoRoute;
}

void CachedShardRouter::attach_views(
    std::span<const std::uint32_t> vertex_begin) {
  NBCLOS_REQUIRE(vertex_begin.size() >= 2, "partition needs >= 1 shard");
  views_.clear();
  vertex_begin_.assign(vertex_begin.begin(), vertex_begin.end());
  const auto shards = static_cast<std::uint32_t>(vertex_begin.size() - 1);
  views_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    views_.emplace_back(*cache_, vertex_begin, s);
  }
}

std::uint32_t CachedShardRouter::next_channel(std::uint32_t vertex,
                                              const Packet& packet) const {
  if (views_.empty()) {
    return cache_->next_channel_from(vertex, packet.src_terminal,
                                     packet.dst_terminal);
  }
  // Owner of `vertex` in the contiguous partition: the last boundary <=
  // vertex.  The partition covers every vertex, so the search is total.
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(vertex_begin_.size()) - 1;
  while (hi - lo > 1) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (vertex_begin_[mid] <= vertex) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return views_[lo].next_channel_from(vertex, packet.src_terminal,
                                      packet.dst_terminal);
}

}  // namespace nbclos::sim
