file(REMOVE_RECURSE
  "CMakeFiles/bench_circuit.dir/bench_circuit.cpp.o"
  "CMakeFiles/bench_circuit.dir/bench_circuit.cpp.o.d"
  "bench_circuit"
  "bench_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
