
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nbclos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nbclos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/nbclos_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nbclos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/adaptive/CMakeFiles/nbclos_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nbclos_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nbclos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
