file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem5.dir/bench_theorem5.cpp.o"
  "CMakeFiles/bench_theorem5.dir/bench_theorem5.cpp.o.d"
  "bench_theorem5"
  "bench_theorem5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
