# Empty dependencies file for bench_theorem5.
# This may be replaced when dependencies are built.
