file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma2.dir/bench_lemma2.cpp.o"
  "CMakeFiles/bench_lemma2.dir/bench_lemma2.cpp.o.d"
  "bench_lemma2"
  "bench_lemma2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
