# Empty dependencies file for bench_lemma2.
# This may be replaced when dependencies are built.
