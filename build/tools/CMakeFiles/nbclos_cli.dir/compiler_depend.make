# Empty compiler generated dependencies file for nbclos_cli.
# This may be replaced when dependencies are built.
