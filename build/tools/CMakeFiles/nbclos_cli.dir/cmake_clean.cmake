file(REMOVE_RECURSE
  "CMakeFiles/nbclos_cli.dir/nbclos_cli.cpp.o"
  "CMakeFiles/nbclos_cli.dir/nbclos_cli.cpp.o.d"
  "nbclos"
  "nbclos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
