file(REMOVE_RECURSE
  "CMakeFiles/circuit_switching.dir/circuit_switching.cpp.o"
  "CMakeFiles/circuit_switching.dir/circuit_switching.cpp.o.d"
  "circuit_switching"
  "circuit_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
