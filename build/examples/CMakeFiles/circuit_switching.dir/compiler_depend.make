# Empty compiler generated dependencies file for circuit_switching.
# This may be replaced when dependencies are built.
