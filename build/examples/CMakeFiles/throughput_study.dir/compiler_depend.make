# Empty compiler generated dependencies file for throughput_study.
# This may be replaced when dependencies are built.
