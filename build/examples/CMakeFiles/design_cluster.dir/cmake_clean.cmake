file(REMOVE_RECURSE
  "CMakeFiles/design_cluster.dir/design_cluster.cpp.o"
  "CMakeFiles/design_cluster.dir/design_cluster.cpp.o.d"
  "design_cluster"
  "design_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
