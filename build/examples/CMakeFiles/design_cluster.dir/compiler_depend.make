# Empty compiler generated dependencies file for design_cluster.
# This may be replaced when dependencies are built.
