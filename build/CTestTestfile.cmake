# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/util")
subdirs("src/topology")
subdirs("src/routing")
subdirs("src/adaptive")
subdirs("src/analysis")
subdirs("src/circuit")
subdirs("src/sim")
subdirs("src/core")
subdirs("tests")
subdirs("bench")
subdirs("examples")
subdirs("tools")
