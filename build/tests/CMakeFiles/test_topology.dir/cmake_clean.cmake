file(REMOVE_RECURSE
  "CMakeFiles/test_topology.dir/topology/test_clos.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_clos.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_dot.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_dot.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_fat_tree.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_fat_tree.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_mport_ntree.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_mport_ntree.cpp.o.d"
  "CMakeFiles/test_topology.dir/topology/test_network.cpp.o"
  "CMakeFiles/test_topology.dir/topology/test_network.cpp.o.d"
  "test_topology"
  "test_topology.pdb"
  "test_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
