file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_conditions.cpp.o"
  "CMakeFiles/test_core.dir/core/test_conditions.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_designer.cpp.o"
  "CMakeFiles/test_core.dir/core/test_designer.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_fabric.cpp.o"
  "CMakeFiles/test_core.dir/core/test_fabric.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_multilevel.cpp.o"
  "CMakeFiles/test_core.dir/core/test_multilevel.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_table_one.cpp.o"
  "CMakeFiles/test_core.dir/core/test_table_one.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
