file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/test_blocking.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_blocking.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_collectives.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_collectives.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_contention.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_contention.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_network_audit.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_network_audit.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_parallel.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_parallel.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_permutations.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_permutations.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_root_capacity.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_root_capacity.cpp.o.d"
  "CMakeFiles/test_analysis.dir/analysis/test_verifier.cpp.o"
  "CMakeFiles/test_analysis.dir/analysis/test_verifier.cpp.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
