file(REMOVE_RECURSE
  "CMakeFiles/test_routing.dir/routing/test_baselines.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_baselines.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_edge_coloring.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_edge_coloring.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_infiniband.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_infiniband.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_kary_updown.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_kary_updown.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_multipath.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_multipath.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_table.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_table.cpp.o.d"
  "CMakeFiles/test_routing.dir/routing/test_yuan.cpp.o"
  "CMakeFiles/test_routing.dir/routing/test_yuan.cpp.o.d"
  "test_routing"
  "test_routing.pdb"
  "test_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
