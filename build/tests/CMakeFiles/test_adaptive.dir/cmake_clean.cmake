file(REMOVE_RECURSE
  "CMakeFiles/test_adaptive.dir/adaptive/test_distributed.cpp.o"
  "CMakeFiles/test_adaptive.dir/adaptive/test_distributed.cpp.o.d"
  "CMakeFiles/test_adaptive.dir/adaptive/test_lemma6.cpp.o"
  "CMakeFiles/test_adaptive.dir/adaptive/test_lemma6.cpp.o.d"
  "CMakeFiles/test_adaptive.dir/adaptive/test_partitions.cpp.o"
  "CMakeFiles/test_adaptive.dir/adaptive/test_partitions.cpp.o.d"
  "CMakeFiles/test_adaptive.dir/adaptive/test_router.cpp.o"
  "CMakeFiles/test_adaptive.dir/adaptive/test_router.cpp.o.d"
  "test_adaptive"
  "test_adaptive.pdb"
  "test_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
