# Empty compiler generated dependencies file for nbclos_routing.
# This may be replaced when dependencies are built.
