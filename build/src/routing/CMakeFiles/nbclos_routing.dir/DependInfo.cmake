
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/baselines.cpp" "src/routing/CMakeFiles/nbclos_routing.dir/baselines.cpp.o" "gcc" "src/routing/CMakeFiles/nbclos_routing.dir/baselines.cpp.o.d"
  "/root/repo/src/routing/edge_coloring.cpp" "src/routing/CMakeFiles/nbclos_routing.dir/edge_coloring.cpp.o" "gcc" "src/routing/CMakeFiles/nbclos_routing.dir/edge_coloring.cpp.o.d"
  "/root/repo/src/routing/infiniband.cpp" "src/routing/CMakeFiles/nbclos_routing.dir/infiniband.cpp.o" "gcc" "src/routing/CMakeFiles/nbclos_routing.dir/infiniband.cpp.o.d"
  "/root/repo/src/routing/kary_updown.cpp" "src/routing/CMakeFiles/nbclos_routing.dir/kary_updown.cpp.o" "gcc" "src/routing/CMakeFiles/nbclos_routing.dir/kary_updown.cpp.o.d"
  "/root/repo/src/routing/multipath.cpp" "src/routing/CMakeFiles/nbclos_routing.dir/multipath.cpp.o" "gcc" "src/routing/CMakeFiles/nbclos_routing.dir/multipath.cpp.o.d"
  "/root/repo/src/routing/table.cpp" "src/routing/CMakeFiles/nbclos_routing.dir/table.cpp.o" "gcc" "src/routing/CMakeFiles/nbclos_routing.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/nbclos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
