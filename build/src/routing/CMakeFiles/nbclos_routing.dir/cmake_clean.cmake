file(REMOVE_RECURSE
  "CMakeFiles/nbclos_routing.dir/baselines.cpp.o"
  "CMakeFiles/nbclos_routing.dir/baselines.cpp.o.d"
  "CMakeFiles/nbclos_routing.dir/edge_coloring.cpp.o"
  "CMakeFiles/nbclos_routing.dir/edge_coloring.cpp.o.d"
  "CMakeFiles/nbclos_routing.dir/infiniband.cpp.o"
  "CMakeFiles/nbclos_routing.dir/infiniband.cpp.o.d"
  "CMakeFiles/nbclos_routing.dir/kary_updown.cpp.o"
  "CMakeFiles/nbclos_routing.dir/kary_updown.cpp.o.d"
  "CMakeFiles/nbclos_routing.dir/multipath.cpp.o"
  "CMakeFiles/nbclos_routing.dir/multipath.cpp.o.d"
  "CMakeFiles/nbclos_routing.dir/table.cpp.o"
  "CMakeFiles/nbclos_routing.dir/table.cpp.o.d"
  "libnbclos_routing.a"
  "libnbclos_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
