file(REMOVE_RECURSE
  "libnbclos_routing.a"
)
