file(REMOVE_RECURSE
  "CMakeFiles/nbclos_util.dir/prng.cpp.o"
  "CMakeFiles/nbclos_util.dir/prng.cpp.o.d"
  "CMakeFiles/nbclos_util.dir/stats.cpp.o"
  "CMakeFiles/nbclos_util.dir/stats.cpp.o.d"
  "CMakeFiles/nbclos_util.dir/table.cpp.o"
  "CMakeFiles/nbclos_util.dir/table.cpp.o.d"
  "CMakeFiles/nbclos_util.dir/thread_pool.cpp.o"
  "CMakeFiles/nbclos_util.dir/thread_pool.cpp.o.d"
  "libnbclos_util.a"
  "libnbclos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
