# Empty dependencies file for nbclos_util.
# This may be replaced when dependencies are built.
