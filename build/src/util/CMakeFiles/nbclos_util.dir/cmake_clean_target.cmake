file(REMOVE_RECURSE
  "libnbclos_util.a"
)
