file(REMOVE_RECURSE
  "CMakeFiles/nbclos_adaptive.dir/distributed.cpp.o"
  "CMakeFiles/nbclos_adaptive.dir/distributed.cpp.o.d"
  "CMakeFiles/nbclos_adaptive.dir/lemma6.cpp.o"
  "CMakeFiles/nbclos_adaptive.dir/lemma6.cpp.o.d"
  "CMakeFiles/nbclos_adaptive.dir/partitions.cpp.o"
  "CMakeFiles/nbclos_adaptive.dir/partitions.cpp.o.d"
  "CMakeFiles/nbclos_adaptive.dir/router.cpp.o"
  "CMakeFiles/nbclos_adaptive.dir/router.cpp.o.d"
  "libnbclos_adaptive.a"
  "libnbclos_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
