file(REMOVE_RECURSE
  "libnbclos_adaptive.a"
)
