# Empty dependencies file for nbclos_adaptive.
# This may be replaced when dependencies are built.
