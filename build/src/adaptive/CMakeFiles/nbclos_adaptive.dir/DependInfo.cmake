
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/distributed.cpp" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/distributed.cpp.o" "gcc" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/distributed.cpp.o.d"
  "/root/repo/src/adaptive/lemma6.cpp" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/lemma6.cpp.o" "gcc" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/lemma6.cpp.o.d"
  "/root/repo/src/adaptive/partitions.cpp" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/partitions.cpp.o" "gcc" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/partitions.cpp.o.d"
  "/root/repo/src/adaptive/router.cpp" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/router.cpp.o" "gcc" "src/adaptive/CMakeFiles/nbclos_adaptive.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/nbclos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
