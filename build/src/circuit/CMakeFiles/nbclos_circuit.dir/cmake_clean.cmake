file(REMOVE_RECURSE
  "CMakeFiles/nbclos_circuit.dir/clos_switch.cpp.o"
  "CMakeFiles/nbclos_circuit.dir/clos_switch.cpp.o.d"
  "libnbclos_circuit.a"
  "libnbclos_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
