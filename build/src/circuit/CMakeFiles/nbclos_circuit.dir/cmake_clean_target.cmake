file(REMOVE_RECURSE
  "libnbclos_circuit.a"
)
