# Empty dependencies file for nbclos_circuit.
# This may be replaced when dependencies are built.
