# Empty dependencies file for nbclos_core.
# This may be replaced when dependencies are built.
