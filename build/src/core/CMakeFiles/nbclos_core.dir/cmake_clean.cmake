file(REMOVE_RECURSE
  "CMakeFiles/nbclos_core.dir/designer.cpp.o"
  "CMakeFiles/nbclos_core.dir/designer.cpp.o.d"
  "CMakeFiles/nbclos_core.dir/fabric.cpp.o"
  "CMakeFiles/nbclos_core.dir/fabric.cpp.o.d"
  "CMakeFiles/nbclos_core.dir/multilevel.cpp.o"
  "CMakeFiles/nbclos_core.dir/multilevel.cpp.o.d"
  "CMakeFiles/nbclos_core.dir/table_one.cpp.o"
  "CMakeFiles/nbclos_core.dir/table_one.cpp.o.d"
  "libnbclos_core.a"
  "libnbclos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
