file(REMOVE_RECURSE
  "libnbclos_core.a"
)
