
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/designer.cpp" "src/core/CMakeFiles/nbclos_core.dir/designer.cpp.o" "gcc" "src/core/CMakeFiles/nbclos_core.dir/designer.cpp.o.d"
  "/root/repo/src/core/fabric.cpp" "src/core/CMakeFiles/nbclos_core.dir/fabric.cpp.o" "gcc" "src/core/CMakeFiles/nbclos_core.dir/fabric.cpp.o.d"
  "/root/repo/src/core/multilevel.cpp" "src/core/CMakeFiles/nbclos_core.dir/multilevel.cpp.o" "gcc" "src/core/CMakeFiles/nbclos_core.dir/multilevel.cpp.o.d"
  "/root/repo/src/core/table_one.cpp" "src/core/CMakeFiles/nbclos_core.dir/table_one.cpp.o" "gcc" "src/core/CMakeFiles/nbclos_core.dir/table_one.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/nbclos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nbclos_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nbclos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
