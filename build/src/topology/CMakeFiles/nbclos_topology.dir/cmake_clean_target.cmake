file(REMOVE_RECURSE
  "libnbclos_topology.a"
)
