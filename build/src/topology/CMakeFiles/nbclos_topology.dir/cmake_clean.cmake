file(REMOVE_RECURSE
  "CMakeFiles/nbclos_topology.dir/clos.cpp.o"
  "CMakeFiles/nbclos_topology.dir/clos.cpp.o.d"
  "CMakeFiles/nbclos_topology.dir/dot.cpp.o"
  "CMakeFiles/nbclos_topology.dir/dot.cpp.o.d"
  "CMakeFiles/nbclos_topology.dir/fat_tree.cpp.o"
  "CMakeFiles/nbclos_topology.dir/fat_tree.cpp.o.d"
  "CMakeFiles/nbclos_topology.dir/mport_ntree.cpp.o"
  "CMakeFiles/nbclos_topology.dir/mport_ntree.cpp.o.d"
  "CMakeFiles/nbclos_topology.dir/network.cpp.o"
  "CMakeFiles/nbclos_topology.dir/network.cpp.o.d"
  "libnbclos_topology.a"
  "libnbclos_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
