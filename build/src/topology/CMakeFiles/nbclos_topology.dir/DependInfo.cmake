
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/clos.cpp" "src/topology/CMakeFiles/nbclos_topology.dir/clos.cpp.o" "gcc" "src/topology/CMakeFiles/nbclos_topology.dir/clos.cpp.o.d"
  "/root/repo/src/topology/dot.cpp" "src/topology/CMakeFiles/nbclos_topology.dir/dot.cpp.o" "gcc" "src/topology/CMakeFiles/nbclos_topology.dir/dot.cpp.o.d"
  "/root/repo/src/topology/fat_tree.cpp" "src/topology/CMakeFiles/nbclos_topology.dir/fat_tree.cpp.o" "gcc" "src/topology/CMakeFiles/nbclos_topology.dir/fat_tree.cpp.o.d"
  "/root/repo/src/topology/mport_ntree.cpp" "src/topology/CMakeFiles/nbclos_topology.dir/mport_ntree.cpp.o" "gcc" "src/topology/CMakeFiles/nbclos_topology.dir/mport_ntree.cpp.o.d"
  "/root/repo/src/topology/network.cpp" "src/topology/CMakeFiles/nbclos_topology.dir/network.cpp.o" "gcc" "src/topology/CMakeFiles/nbclos_topology.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
