# Empty compiler generated dependencies file for nbclos_topology.
# This may be replaced when dependencies are built.
