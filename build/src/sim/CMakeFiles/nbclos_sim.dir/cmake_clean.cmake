file(REMOVE_RECURSE
  "CMakeFiles/nbclos_sim.dir/engine.cpp.o"
  "CMakeFiles/nbclos_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nbclos_sim.dir/oracle.cpp.o"
  "CMakeFiles/nbclos_sim.dir/oracle.cpp.o.d"
  "CMakeFiles/nbclos_sim.dir/path_oracle.cpp.o"
  "CMakeFiles/nbclos_sim.dir/path_oracle.cpp.o.d"
  "CMakeFiles/nbclos_sim.dir/traffic.cpp.o"
  "CMakeFiles/nbclos_sim.dir/traffic.cpp.o.d"
  "libnbclos_sim.a"
  "libnbclos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
