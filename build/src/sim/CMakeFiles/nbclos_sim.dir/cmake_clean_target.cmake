file(REMOVE_RECURSE
  "libnbclos_sim.a"
)
