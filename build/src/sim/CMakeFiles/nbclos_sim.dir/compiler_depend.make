# Empty compiler generated dependencies file for nbclos_sim.
# This may be replaced when dependencies are built.
