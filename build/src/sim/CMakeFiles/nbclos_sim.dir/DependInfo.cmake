
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/nbclos_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/nbclos_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/oracle.cpp" "src/sim/CMakeFiles/nbclos_sim.dir/oracle.cpp.o" "gcc" "src/sim/CMakeFiles/nbclos_sim.dir/oracle.cpp.o.d"
  "/root/repo/src/sim/path_oracle.cpp" "src/sim/CMakeFiles/nbclos_sim.dir/path_oracle.cpp.o" "gcc" "src/sim/CMakeFiles/nbclos_sim.dir/path_oracle.cpp.o.d"
  "/root/repo/src/sim/traffic.cpp" "src/sim/CMakeFiles/nbclos_sim.dir/traffic.cpp.o" "gcc" "src/sim/CMakeFiles/nbclos_sim.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/nbclos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/nbclos_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nbclos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
