file(REMOVE_RECURSE
  "CMakeFiles/nbclos_analysis.dir/blocking.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/blocking.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/collectives.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/collectives.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/contention.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/contention.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/network_audit.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/network_audit.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/parallel.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/parallel.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/permutations.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/permutations.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/root_capacity.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/root_capacity.cpp.o.d"
  "CMakeFiles/nbclos_analysis.dir/verifier.cpp.o"
  "CMakeFiles/nbclos_analysis.dir/verifier.cpp.o.d"
  "libnbclos_analysis.a"
  "libnbclos_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbclos_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
