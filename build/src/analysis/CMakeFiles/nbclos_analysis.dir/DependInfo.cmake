
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocking.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/blocking.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/blocking.cpp.o.d"
  "/root/repo/src/analysis/collectives.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/collectives.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/collectives.cpp.o.d"
  "/root/repo/src/analysis/contention.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/contention.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/contention.cpp.o.d"
  "/root/repo/src/analysis/network_audit.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/network_audit.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/network_audit.cpp.o.d"
  "/root/repo/src/analysis/parallel.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/parallel.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/parallel.cpp.o.d"
  "/root/repo/src/analysis/permutations.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/permutations.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/permutations.cpp.o.d"
  "/root/repo/src/analysis/root_capacity.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/root_capacity.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/root_capacity.cpp.o.d"
  "/root/repo/src/analysis/verifier.cpp" "src/analysis/CMakeFiles/nbclos_analysis.dir/verifier.cpp.o" "gcc" "src/analysis/CMakeFiles/nbclos_analysis.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/nbclos_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/nbclos_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nbclos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
