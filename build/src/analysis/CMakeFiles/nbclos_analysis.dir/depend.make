# Empty dependencies file for nbclos_analysis.
# This may be replaced when dependencies are built.
