file(REMOVE_RECURSE
  "libnbclos_analysis.a"
)
