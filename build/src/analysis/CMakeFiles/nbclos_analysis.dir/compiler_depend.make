# Empty compiler generated dependencies file for nbclos_analysis.
# This may be replaced when dependencies are built.
